//! Parameterized inconsistent-database generation for arbitrary problems.
//!
//! Given `(q, FK)`, the generator plants `n_valuations` random satisfying
//! valuations of `q` (so the clean core satisfies both the query and the
//! foreign keys by construction — `FK` is about `q`), then injects
//! primary-key violations (extra facts key-equal to planted ones) and
//! dangling facts at configurable rates. This is the workload for the
//! FO-rewriting vs. naive-oracle scaling experiment (E13).

use cqa_model::{Atom, Cst, Fact, FkSet, Instance, Query, Term, Valuation, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of planted satisfying valuations.
    pub n_valuations: usize,
    /// Size of the constant pool the valuations draw from.
    pub domain_size: usize,
    /// Fraction (0..=1) of planted facts that get a key-equal sibling
    /// (primary-key violation).
    pub pk_violation_rate: f64,
    /// Fraction (0..=1) of atoms for which an extra *dangling-prone* fact is
    /// inserted with fresh values (may violate foreign keys).
    pub noise_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            n_valuations: 16,
            domain_size: 16,
            pk_violation_rate: 0.3,
            noise_rate: 0.2,
            seed: 0xC0FFEE,
        }
    }
}

/// Generates an inconsistent database for `(q, fks)`.
pub fn generate(q: &Query, _fks: &FkSet, cfg: GenConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Instance::new(q.schema().clone());
    let pool: Vec<Cst> = (0..cfg.domain_size.max(1))
        .map(|i| Cst::new(&format!("v{i}")))
        .collect();

    for _ in 0..cfg.n_valuations {
        // Random valuation over vars(q).
        let val: Valuation = q
            .vars()
            .into_iter()
            .map(|v: Var| (v, pool[rng.gen_range(0..pool.len())]))
            .collect();
        for atom in q.atoms() {
            let fact = apply(atom, &val);
            db.insert(fact.clone()).expect("schema ok");

            // Primary-key violation: a sibling agreeing on the key.
            if rng.gen_bool(cfg.pk_violation_rate) {
                let sig = q.sig(atom.rel);
                if sig.nonkey_len() > 0 {
                    let mut args = fact.args.to_vec();
                    for a in args.iter_mut().skip(sig.key_len) {
                        *a = pool[rng.gen_range(0..pool.len())];
                    }
                    db.insert(Fact::new(atom.rel, args)).expect("schema ok");
                }
            }

            // Noise: an unrelated fact with random values (often dangling).
            if rng.gen_bool(cfg.noise_rate) {
                let sig = q.sig(atom.rel);
                let args: Vec<Cst> = (0..sig.arity)
                    .map(|_| pool[rng.gen_range(0..pool.len())])
                    .collect();
                db.insert(Fact::new(atom.rel, args)).expect("schema ok");
            }
        }
    }
    db
}

fn apply(atom: &Atom, val: &BTreeMap<Var, Cst>) -> Fact {
    let args: Vec<Cst> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Cst(c) => *c,
            Term::Var(v) => val[v],
        })
        .collect();
    Fact::new(atom.rel, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn generation_is_deterministic() {
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let q = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let a = generate(&q, &fks, GenConfig::default());
        let b = generate(&q, &fks, GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn clean_core_satisfies_query() {
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let q = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let db = generate(
            &q,
            &fks,
            GenConfig {
                pk_violation_rate: 0.0,
                noise_rate: 0.0,
                ..Default::default()
            },
        );
        assert!(cqa_model::satisfies(&db, &q));
        assert!(db.satisfies_fks(&fks), "clean core honours the FKs");
    }

    #[test]
    fn violation_rates_inject_inconsistency() {
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let q = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let db = generate(
            &q,
            &fks,
            GenConfig {
                n_valuations: 50,
                pk_violation_rate: 0.8,
                noise_rate: 0.8,
                ..Default::default()
            },
        );
        assert!(!db.pk_violations().is_empty());
    }

    #[test]
    fn scales_with_valuations() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y)").unwrap();
        let fks = cqa_model::FkSet::empty(s.clone());
        let small = generate(
            &q,
            &fks,
            GenConfig {
                n_valuations: 5,
                domain_size: 1000,
                pk_violation_rate: 0.0,
                noise_rate: 0.0,
                seed: 1,
            },
        );
        let large = generate(
            &q,
            &fks,
            GenConfig {
                n_valuations: 200,
                domain_size: 1000,
                pk_violation_rate: 0.0,
                noise_rate: 0.0,
                seed: 1,
            },
        );
        assert!(large.len() > small.len());
    }
}
