//! # cqa-gen
//!
//! Workload and instance generators for the experiment harness:
//!
//! * [`mod@block_chain`] — the §4 block-to-block propagation family (the
//!   intuition behind block-interference and the P-complete Proposition 17);
//! * [`bibliography`] — the Figure 1 bibliography scenario (DOIs, ORCiDs,
//!   dirty author names, a dangling authorship fact);
//! * [`graphs`] — random DAGs and layered graphs feeding the Figure 3
//!   reachability reduction;
//! * [`inconsistent`] — parameterized inconsistent-database generation for
//!   arbitrary `(q, FK)` problems: plant satisfying valuations, then inject
//!   primary-key violations and foreign-key dangling facts at given rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bibliography;
pub mod block_chain;
pub mod graphs;
pub mod inconsistent;

pub use bibliography::bibliography_scenario;
pub use block_chain::{block_chain, BlockChainConfig};
pub use inconsistent::{generate, GenConfig};
