//! The §4 block-chain family for `q = {N(x,'c',y), O(y)}`, `FK = {N[3]→O}`.
//!
//! ```text
//! N(b₁,c,1) N(b₁,d,2)
//! N(b₂,c,2) N(b₂,d,3)
//! …
//! N(bₙ,c,n) N(bₙ,d,n+1)
//! N(bₙ₊₁,□,n+1)
//! O(1)
//! ```
//!
//! The paper: this is a yes-instance iff `□ = c`; deleting `O(1)` makes the
//! empty instance a repair, hence a no-instance. Certainty must propagate
//! from block to block — the behaviour block-interference captures and the
//! reason the problem escapes FO.

use cqa_model::parser::{parse_fks, parse_query, parse_schema};
use cqa_model::{Cst, Fact, FkSet, Instance, Query, RelName, Schema};
use std::sync::Arc;

/// Configuration for the block-chain generator.
#[derive(Clone, Copy, Debug)]
pub struct BlockChainConfig {
    /// Number of full blocks `n`.
    pub n: usize,
    /// The middle value `□` of the closing fact (`true` ⇒ `c`, else `d`).
    pub closing_is_c: bool,
    /// Whether to include the anchor fact `O(1)`.
    pub with_anchor: bool,
}

impl Default for BlockChainConfig {
    fn default() -> Self {
        BlockChainConfig {
            n: 8,
            closing_is_c: true,
            with_anchor: true,
        }
    }
}

/// The generated problem pieces.
#[derive(Clone, Debug)]
pub struct BlockChain {
    /// Schema `N[3,1] O[1,1]`.
    pub schema: Arc<Schema>,
    /// Query `{N(x,'c',y), O(y)}`.
    pub query: Query,
    /// Foreign keys `{N[3]→O}`.
    pub fks: FkSet,
    /// The database.
    pub db: Instance,
    /// The ground-truth answer (yes-instance iff `□ = c` and anchored).
    pub expected_certain: bool,
}

/// Generates the §4 chain database.
pub fn block_chain(cfg: BlockChainConfig) -> BlockChain {
    let schema = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let query = parse_query(&schema, "N(x,'c',y), O(y)").unwrap();
    let fks = parse_fks(&schema, "N[3] -> O").unwrap();

    let n_rel = RelName::new("N");
    let o_rel = RelName::new("O");
    let c = Cst::new("c");
    let d = Cst::new("d");
    let key = |i: usize| Cst::new(&format!("b{i}"));
    let val = |i: usize| Cst::new(&format!("{i}"));

    let mut db = Instance::new(schema.clone());
    for i in 1..=cfg.n {
        db.insert(Fact::new(n_rel, vec![key(i), c, val(i)])).unwrap();
        db.insert(Fact::new(n_rel, vec![key(i), d, val(i + 1)]))
            .unwrap();
    }
    let closing = if cfg.closing_is_c { c } else { d };
    db.insert(Fact::new(n_rel, vec![key(cfg.n + 1), closing, val(cfg.n + 1)]))
        .unwrap();
    if cfg.with_anchor {
        db.insert(Fact::new(o_rel, vec![val(1)])).unwrap();
    }

    BlockChain {
        schema,
        query,
        fks,
        db,
        expected_certain: cfg.closing_is_c && cfg.with_anchor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let bc = block_chain(BlockChainConfig {
            n: 5,
            closing_is_c: true,
            with_anchor: true,
        });
        assert_eq!(bc.db.count_of(RelName::new("N")), 11);
        assert_eq!(bc.db.count_of(RelName::new("O")), 1);
    }

    #[test]
    fn expected_answers() {
        assert!(block_chain(BlockChainConfig::default()).expected_certain);
        assert!(
            !block_chain(BlockChainConfig {
                closing_is_c: false,
                ..Default::default()
            })
            .expected_certain
        );
        assert!(
            !block_chain(BlockChainConfig {
                with_anchor: false,
                ..Default::default()
            })
            .expected_certain
        );
    }
}
