//! The Figure 1 bibliography scenario.
//!
//! Relations (primary keys underlined in the paper):
//!
//! * `R(doi, orcid)` — authorship, composite key (both attributes);
//! * `AUTHORS(orcid, first, last)`;
//! * `DOCS(doi, title, year)`;
//!
//! with `FK₀ = {R[1]→DOCS, R[2]→AUTHORS}`. The instance has one
//! primary-key violation (two first names for ORCiD `o1`) and one dangling
//! authorship fact (`R(d1, o3)`). The §1 query `q₀` asks: *does some paper
//! of 2016 have an author with first name Jeff?* — whose consistent answer
//! is **no**.

use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
use cqa_model::{FkSet, Instance, Query, Schema};
use std::sync::Arc;

/// The generated Figure 1 scenario.
#[derive(Clone, Debug)]
pub struct Bibliography {
    /// Schema `R[2,2] AUTHORS[3,1] DOCS[3,1]`.
    pub schema: Arc<Schema>,
    /// The §1 query `q₀`.
    pub query: Query,
    /// `FK₀`.
    pub fks: FkSet,
    /// The Figure 1 instance.
    pub db: Instance,
}

/// Builds the paper's Figure 1 database, query `q₀` and `FK₀`.
pub fn bibliography_scenario() -> Bibliography {
    let schema = Arc::new(parse_schema("R[2,2] AUTHORS[3,1] DOCS[3,1]").unwrap());
    let query = parse_query(
        &schema,
        "DOCS(x, t, 2016), R(x, y), AUTHORS(y, 'Jeff', z)",
    )
    .unwrap();
    let fks = parse_fks(&schema, "R[1] -> DOCS, R[2] -> AUTHORS").unwrap();
    let db = parse_instance(
        &schema,
        "R(d1, o1); R(d1, o2); R(d1, o3)
         AUTHORS(o1, 'Jeff', 'Ullman'); AUTHORS(o1, 'Jeffrey', 'Ullman')
         AUTHORS(o2, 'Jonathan', 'Ullman')
         DOCS(d1, 'Some pairs problems', 2016)",
    )
    .unwrap();
    Bibliography {
        schema,
        query,
        fks,
        db,
    }
}

/// A scaled-up bibliography: `papers` documents, each with `authors_per`
/// authors, a fraction of authors with conflicting first names and a
/// fraction of dangling authorships. Used by the E1 benchmarks.
pub fn scaled_bibliography(
    papers: usize,
    authors_per: usize,
    conflict_every: usize,
    dangling_every: usize,
) -> Bibliography {
    let base = bibliography_scenario();
    let mut db = Instance::new(base.schema.clone());
    let mut author_id = 0usize;
    for p in 0..papers {
        let doi = format!("doi{p}");
        let year = if p % 2 == 0 { "2016" } else { "2017" };
        db.insert_named("DOCS", &[&doi, &format!("title{p}"), year])
            .unwrap();
        for a in 0..authors_per {
            author_id += 1;
            let orcid = format!("orcid{author_id}");
            if dangling_every > 0 && author_id.is_multiple_of(dangling_every) {
                // dangling authorship: no AUTHORS tuple
                db.insert_named("R", &[&doi, &orcid]).unwrap();
                continue;
            }
            db.insert_named("R", &[&doi, &orcid]).unwrap();
            let first = if a == 0 { "Jeff" } else { "Ada" };
            db.insert_named("AUTHORS", &[&orcid, first, "Lovelace"])
                .unwrap();
            if conflict_every > 0 && author_id.is_multiple_of(conflict_every) {
                db.insert_named("AUTHORS", &[&orcid, "Geoff", "Lovelace"])
                    .unwrap();
            }
        }
    }
    Bibliography {
        schema: base.schema,
        query: base.query,
        fks: base.fks,
        db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::Fact;

    #[test]
    fn figure_1_shape() {
        let b = bibliography_scenario();
        assert_eq!(b.db.len(), 7);
        // One PK violation: the o1 block of AUTHORS.
        let v = b.db.pk_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, cqa_model::RelName::new("AUTHORS"));
        // One dangling fact: R(d1, o3).
        let dangling = b.db.dangling_facts(&b.fks);
        assert_eq!(dangling, vec![Fact::from_names("R", &["d1", "o3"])]);
    }

    #[test]
    fn fk0_is_about_q0() {
        let b = bibliography_scenario();
        assert!(b.fks.check_about(&b.query).is_ok());
    }

    #[test]
    fn scaled_generation() {
        let b = scaled_bibliography(10, 3, 5, 7);
        assert_eq!(b.db.count_of(cqa_model::RelName::new("DOCS")), 10);
        assert!(b.db.count_of(cqa_model::RelName::new("R")) == 30);
        assert!(!b.db.pk_violations().is_empty());
        assert!(!b.db.dangling_facts(&b.fks).is_empty());
    }
}
