//! The attack graph of a self-join-free conjunctive query (paper §3.1,
//! following Koutris & Wijsen).
//!
//! Vertices are the atoms of `q`. There is an attack `F ⇝ G` (for `F ≠ G`)
//! if some sequence of variables `x₀, …, xₙ`, all outside `F^{+,q}`, links a
//! variable of `F` to a variable of `G`, adjacent variables co-occurring in
//! an atom of `q`. An attack is *weak* when `K(q) ⊨ key(F) → key(G)` and
//! *strong* otherwise; strong attacks on cycles drive the coNP-hard cases of
//! the PK-only trichotomy.

use crate::fd::{f_plus, k_of};
use cqa_model::{Query, RelName, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The attack graph of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttackGraph {
    atoms: Vec<RelName>,
    edges: BTreeMap<RelName, BTreeSet<RelName>>,
    strong: BTreeSet<(RelName, RelName)>,
}

impl AttackGraph {
    /// Computes the attack graph of `q`.
    pub fn of(q: &Query) -> AttackGraph {
        let atoms: Vec<RelName> = q.relations().collect();
        let all_vars = q.vars();
        let k = k_of(q);
        let mut edges: BTreeMap<RelName, BTreeSet<RelName>> = BTreeMap::new();
        let mut strong = BTreeSet::new();

        for &f in &atoms {
            let f_atom = q.atom(f).expect("atom exists");
            let plus = f_plus(q, f);
            let outside: BTreeSet<Var> = all_vars.difference(&plus).copied().collect();

            // BFS in the co-occurrence graph restricted to `outside`,
            // starting from vars(F) ∖ F⁺.
            let mut reach: BTreeSet<Var> = f_atom
                .vars()
                .intersection(&outside)
                .copied()
                .collect();
            let mut stack: Vec<Var> = reach.iter().copied().collect();
            while let Some(u) = stack.pop() {
                for atom in q.atoms() {
                    let vars = atom.vars();
                    if vars.contains(&u) {
                        for w in vars {
                            if outside.contains(&w) && reach.insert(w) {
                                stack.push(w);
                            }
                        }
                    }
                }
            }

            let targets: BTreeSet<RelName> = atoms
                .iter()
                .copied()
                .filter(|&g| g != f)
                .filter(|&g| {
                    let g_vars = q.atom(g).expect("atom exists").vars();
                    g_vars.iter().any(|v| reach.contains(v))
                })
                .collect();
            for &g in &targets {
                let key_f = q.key_vars(f);
                let key_g = q.key_vars(g);
                if !k.implies(&key_f, &key_g) {
                    strong.insert((f, g));
                }
            }
            edges.insert(f, targets);
        }
        AttackGraph {
            atoms,
            edges,
            strong,
        }
    }

    /// The atoms (vertices), canonical order.
    pub fn atoms(&self) -> &[RelName] {
        &self.atoms
    }

    /// Whether `f ⇝ g`.
    pub fn attacks(&self, f: RelName, g: RelName) -> bool {
        self.edges.get(&f).map(|s| s.contains(&g)).unwrap_or(false)
    }

    /// Whether `f ⇝ g` is a strong attack.
    pub fn is_strong(&self, f: RelName, g: RelName) -> bool {
        self.strong.contains(&(f, g))
    }

    /// All attacks as `(from, to, strong)` triples.
    pub fn all_attacks(&self) -> Vec<(RelName, RelName, bool)> {
        let mut out = Vec::new();
        for (f, gs) in &self.edges {
            for g in gs {
                out.push((*f, *g, self.is_strong(*f, *g)));
            }
        }
        out
    }

    /// Atoms with no incoming attack.
    pub fn unattacked(&self) -> Vec<RelName> {
        self.atoms
            .iter()
            .copied()
            .filter(|&g| !self.atoms.iter().any(|&f| self.attacks(f, g)))
            .collect()
    }

    /// Whether the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let mut indeg: BTreeMap<RelName, usize> =
            self.atoms.iter().map(|&a| (a, 0)).collect();
        for gs in self.edges.values() {
            for g in gs {
                *indeg.get_mut(g).expect("vertex") += 1;
            }
        }
        let mut queue: Vec<RelName> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&a, _)| a)
            .collect();
        let mut removed = 0usize;
        while let Some(a) = queue.pop() {
            removed += 1;
            if let Some(gs) = self.edges.get(&a) {
                for g in gs {
                    let d = indeg.get_mut(g).expect("vertex");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(*g);
                    }
                }
            }
        }
        removed == self.atoms.len()
    }

    /// Whether some cycle passes through a strong attack — i.e. a strong edge
    /// `(f, g)` with `f` reachable back from `g`. This is the coNP-hardness
    /// criterion of the PK-only trichotomy.
    pub fn has_strong_cycle(&self) -> bool {
        self.strong
            .iter()
            .any(|&(f, g)| self.reaches(g, f))
    }

    fn reaches(&self, from: RelName, to: RelName) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        seen.insert(from);
        while let Some(a) = stack.pop() {
            if a == to {
                return true;
            }
            if let Some(gs) = self.edges.get(&a) {
                for &g in gs {
                    if seen.insert(g) {
                        stack.push(g);
                    }
                }
            }
        }
        false
    }
}

impl fmt::Display for AttackGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (from, to, strong) in self.all_attacks() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            let arrow = if strong { "⇝ₛ" } else { "⇝" };
            write!(f, "{from} {arrow} {to}")?;
        }
        if first {
            write!(f, "(no attacks)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_query, parse_schema};
    use std::sync::Arc;

    fn rel(s: &str) -> RelName {
        RelName::new(s)
    }

    #[test]
    fn chain_query_is_acyclic() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let ag = AttackGraph::of(&q);
        assert!(ag.attacks(rel("R"), rel("S")));
        assert!(!ag.attacks(rel("S"), rel("R")));
        assert!(ag.is_acyclic());
        assert_eq!(ag.unattacked(), vec![rel("R")]);
    }

    #[test]
    fn two_cycle_weak_attacks() {
        // Paper §6: q = {R(x,y), S(y,x)} has a cyclic attack graph.
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,x)").unwrap();
        let ag = AttackGraph::of(&q);
        assert!(ag.attacks(rel("R"), rel("S")));
        assert!(ag.attacks(rel("S"), rel("R")));
        assert!(!ag.is_acyclic());
        // Both attacks are weak: x → y and y → x hold in K(q).
        assert!(!ag.is_strong(rel("R"), rel("S")));
        assert!(!ag.is_strong(rel("S"), rel("R")));
        assert!(!ag.has_strong_cycle());
    }

    #[test]
    fn strong_cycle_detected() {
        // The classical coNP-complete query {R(x,y), S(z,y)}.
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(z,y)").unwrap();
        let ag = AttackGraph::of(&q);
        assert!(!ag.is_acyclic());
        assert!(ag.has_strong_cycle());
    }

    #[test]
    fn constants_weaken_attacks() {
        // q = {R(x,'c'), S(y,'d')}: no shared variables, no attacks.
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,'c'), S(y,'d')").unwrap();
        let ag = AttackGraph::of(&q);
        assert!(ag.all_attacks().is_empty());
        assert!(ag.is_acyclic());
        assert_eq!(ag.unattacked().len(), 2);
    }

    #[test]
    fn fplus_blocks_attack() {
        // q = {R(x,y), S(x,y)}: R⁺ = {x,y} = vars, so no attack R ⇝ S, and
        // symmetrically. The graph is empty.
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(x,y)").unwrap();
        let ag = AttackGraph::of(&q);
        assert!(ag.all_attacks().is_empty());
    }

    #[test]
    fn attack_through_intermediate_variable() {
        // q = {R(x,y), S(y,z), T(z,u)}: R attacks T through y—z.
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z), T(z,u)").unwrap();
        let ag = AttackGraph::of(&q);
        assert!(ag.attacks(rel("R"), rel("T")));
        assert!(ag.is_acyclic());
    }

    #[test]
    fn paper_example13_queries_acyclic() {
        // Example 13: all three variants have acyclic attack graphs.
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        for text in [
            "N(x,u,y), O(y,w)",
            "N(x,'c',y), O(y,w)",
            "N(x,'c',y), O(y,'c')",
        ] {
            let q = parse_query(&s, text).unwrap();
            assert!(AttackGraph::of(&q).is_acyclic(), "query {text}");
        }
    }

    #[test]
    fn display_renders() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(z,y)").unwrap();
        let ag = AttackGraph::of(&q);
        let shown = ag.to_string();
        assert!(shown.contains("⇝"));
    }
}
