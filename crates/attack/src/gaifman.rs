//! Vertex-restricted Gaifman graphs `G_V(q)` (paper §4, before Def. 9).
//!
//! For `V ⊆ vars(q)`, `G_V(q)` has vertex set `V` and an edge `{x, y}` when
//! `x = y` or some atom of `q` contains both `x` and `y` within `V`.

use cqa_model::{Query, Var};
use std::collections::BTreeSet;

/// Whether `x` and `y` are connected in `G_V(q)`.
///
/// Both endpoints must belong to `V` (a vertex is vacuously connected to
/// itself when it is a vertex of the graph).
pub fn connected_in(q: &Query, v_set: &BTreeSet<Var>, x: Var, y: Var) -> bool {
    if !v_set.contains(&x) || !v_set.contains(&y) {
        return false;
    }
    if x == y {
        return true;
    }
    let mut seen: BTreeSet<Var> = BTreeSet::new();
    let mut stack = vec![x];
    seen.insert(x);
    while let Some(u) = stack.pop() {
        for atom in q.atoms() {
            let vars: BTreeSet<Var> = atom
                .vars()
                .into_iter()
                .filter(|w| v_set.contains(w))
                .collect();
            if vars.contains(&u) {
                for w in vars {
                    if w == y {
                        return true;
                    }
                    if seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
        }
    }
    false
}

/// The connected component of `x` in `G_V(q)`.
pub fn component_of(q: &Query, v_set: &BTreeSet<Var>, x: Var) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    if !v_set.contains(&x) {
        return out;
    }
    let mut stack = vec![x];
    out.insert(x);
    while let Some(u) = stack.pop() {
        for atom in q.atoms() {
            let vars: BTreeSet<Var> = atom
                .vars()
                .into_iter()
                .filter(|w| v_set.contains(w))
                .collect();
            if vars.contains(&u) {
                for w in vars {
                    if out.insert(w) {
                        stack.push(w);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_query, parse_schema};
    use std::sync::Arc;

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    #[test]
    fn connectivity_respects_vertex_set() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let all: BTreeSet<Var> = q.vars();
        assert!(connected_in(&q, &all, v("x"), v("z")));

        // Removing y from the vertex set disconnects x and z.
        let no_y: BTreeSet<Var> = [v("x"), v("z")].into_iter().collect();
        assert!(!connected_in(&q, &no_y, v("x"), v("z")));
    }

    #[test]
    fn self_connectivity_needs_membership() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y)").unwrap();
        let only_x: BTreeSet<Var> = [v("x")].into_iter().collect();
        assert!(connected_in(&q, &only_x, v("x"), v("x")));
        assert!(!connected_in(&q, &only_x, v("y"), v("y")));
    }

    #[test]
    fn components() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z), T(u,w)").unwrap();
        let all = q.vars();
        let comp = component_of(&q, &all, v("x"));
        assert_eq!(
            comp,
            [v("x"), v("y"), v("z")].into_iter().collect::<BTreeSet<_>>()
        );
        let comp2 = component_of(&q, &all, v("u"));
        assert_eq!(comp2, [v("u"), v("w")].into_iter().collect::<BTreeSet<_>>());
    }
}
