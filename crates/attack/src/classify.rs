//! The complexity trichotomy for `CERTAINTY(q)` with primary keys only
//! (Koutris & Wijsen; recalled as Theorem 2 and §2 of the reproduced paper):
//! for every `q` in `sjfBCQ`, `CERTAINTY(q)` is in FO, L-complete, or
//! coNP-complete, decidable from the attack graph.

use crate::attack_graph::AttackGraph;
use cqa_model::Query;
use std::fmt;

/// The complexity class of `CERTAINTY(q)` for primary keys only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PkClass {
    /// Acyclic attack graph: first-order rewritable.
    Fo,
    /// Cyclic attack graph, every cycle weak: L-complete.
    LComplete,
    /// Some cycle passes through a strong attack: coNP-complete.
    CoNpComplete,
}

impl fmt::Display for PkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PkClass::Fo => write!(f, "FO"),
            PkClass::LComplete => write!(f, "L-complete"),
            PkClass::CoNpComplete => write!(f, "coNP-complete"),
        }
    }
}

/// Classifies `CERTAINTY(q)` (primary keys only).
pub fn classify_pk(q: &Query) -> PkClass {
    let ag = AttackGraph::of(q);
    if ag.is_acyclic() {
        PkClass::Fo
    } else if ag.has_strong_cycle() {
        PkClass::CoNpComplete
    } else {
        PkClass::LComplete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn trichotomy_on_canonical_queries() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let fo = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        assert_eq!(classify_pk(&fo), PkClass::Fo);

        let l = parse_query(&s, "R(x,y), S(y,x)").unwrap();
        assert_eq!(classify_pk(&l), PkClass::LComplete);

        let conp = parse_query(&s, "R(x,y), S(z,y)").unwrap();
        assert_eq!(classify_pk(&conp), PkClass::CoNpComplete);
    }

    #[test]
    fn single_atom_always_fo() {
        let s = Arc::new(parse_schema("R[3,2]").unwrap());
        let q = parse_query(&s, "R(x,y,z)").unwrap();
        assert_eq!(classify_pk(&q), PkClass::Fo);
    }

    #[test]
    fn display() {
        assert_eq!(PkClass::Fo.to_string(), "FO");
        assert_eq!(PkClass::LComplete.to_string(), "L-complete");
        assert_eq!(PkClass::CoNpComplete.to_string(), "coNP-complete");
    }
}
