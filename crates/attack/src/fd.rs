//! Functional dependencies over query variables.
//!
//! For a query `q` in `sjfBCQ`, the paper (§3.1) defines
//! `K(q) = { key(F) → vars(F) | F ∈ q }` — for each atom, its key variables
//! determine all its variables. Constants contribute nothing: an atom whose
//! key positions hold only constants yields the dependency `∅ → vars(F)`.

use cqa_model::{Query, RelName, Var};
use std::collections::BTreeSet;

/// A set of functional dependencies `X → Y` over variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<(BTreeSet<Var>, BTreeSet<Var>)>,
}

impl FdSet {
    /// Creates an empty set.
    pub fn new() -> FdSet {
        FdSet::default()
    }

    /// Adds a dependency `lhs → rhs`.
    pub fn add(&mut self, lhs: BTreeSet<Var>, rhs: BTreeSet<Var>) {
        self.fds.push((lhs, rhs));
    }

    /// The dependencies.
    pub fn fds(&self) -> &[(BTreeSet<Var>, BTreeSet<Var>)] {
        &self.fds
    }

    /// The closure of `start` under this set (the standard fixpoint).
    pub fn closure(&self, start: &BTreeSet<Var>) -> BTreeSet<Var> {
        let mut out = start.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for (lhs, rhs) in &self.fds {
                if lhs.is_subset(&out) && !rhs.is_subset(&out) {
                    out.extend(rhs.iter().copied());
                    changed = true;
                }
            }
        }
        out
    }

    /// Whether `lhs → rhs` is implied (`K ⊨ lhs → rhs`).
    pub fn implies(&self, lhs: &BTreeSet<Var>, rhs: &BTreeSet<Var>) -> bool {
        rhs.is_subset(&self.closure(lhs))
    }

    /// Whether `K ⊨ ∅ → {v}`: the variable is functionally fixed.
    pub fn fixes(&self, v: Var) -> bool {
        self.closure(&BTreeSet::new()).contains(&v)
    }
}

/// `K(q)`: the set `{ key(F) → vars(F) | F ∈ q }`.
pub fn k_of(q: &Query) -> FdSet {
    let mut out = FdSet::new();
    for atom in q.atoms() {
        let sig = q.sig(atom.rel);
        out.add(atom.key_vars(sig), atom.vars());
    }
    out
}

/// `F^{+,q}` for the `rel`-atom `F`: the variables functionally determined by
/// `key(F)` via `K(q ∖ {F})` (paper §3.1).
pub fn f_plus(q: &Query, rel: RelName) -> BTreeSet<Var> {
    let Some(atom) = q.atom(rel) else {
        return BTreeSet::new();
    };
    let key = atom.key_vars(q.sig(rel));
    let k_rest = k_of(&q.without(rel));
    // The paper defines F^{+,q} as a subset of vars(q); the closure may
    // contain key(F) variables that vanish from q ∖ {F} — they are still
    // variables of q, so keep everything in vars(q).
    let all = q.vars();
    k_rest
        .closure(&key)
        .into_iter()
        .filter(|v| all.contains(v))
        .collect()
}

/// The variables `v` with `K(q) ⊨ ∅ → {v}` (used by Definition 9's set `V`).
pub fn fixed_vars(q: &Query) -> BTreeSet<Var> {
    k_of(q).closure(&BTreeSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_query, parse_schema};
    use std::sync::Arc;

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    fn set(vars: &[&str]) -> BTreeSet<Var> {
        vars.iter().map(|s| v(s)).collect()
    }

    #[test]
    fn closure_basics() {
        let mut fds = FdSet::new();
        fds.add(set(&["x"]), set(&["x", "y"]));
        fds.add(set(&["y"]), set(&["z"]));
        assert_eq!(fds.closure(&set(&["x"])), set(&["x", "y", "z"]));
        assert!(fds.implies(&set(&["x"]), &set(&["z"])));
        assert!(!fds.implies(&set(&["y"]), &set(&["x"])));
    }

    #[test]
    fn k_of_query() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let k = k_of(&q);
        assert!(k.implies(&set(&["x"]), &set(&["y"])));
        assert!(k.implies(&set(&["y"]), &set(&["z"])));
        assert!(k.implies(&set(&["x"]), &set(&["z"])));
        assert!(!k.implies(&set(&["z"]), &set(&["x"])));
    }

    #[test]
    fn constant_keys_fix_variables() {
        // N(c, y): key holds only a constant, so ∅ → y.
        let s = Arc::new(parse_schema("N[2,1] P[1,1]").unwrap());
        let q = parse_query(&s, "N('c', y), P(y)").unwrap();
        assert_eq!(fixed_vars(&q), set(&["y"]));
        assert!(k_of(&q).fixes(v("y")));
    }

    #[test]
    fn f_plus_chain_query() {
        // q = {R(x,y), S(y,z)}: R^{+,q} = {x} (S's FD y→z does not fire from
        // {x}), S^{+,q} = {y, z}... K(q∖S) = {x→xy}, closure({y}) = {y}.
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        assert_eq!(f_plus(&q, cqa_model::RelName::new("R")), set(&["x"]));
        assert_eq!(f_plus(&q, cqa_model::RelName::new("S")), set(&["y"]));
    }

    #[test]
    fn f_plus_uses_other_atoms() {
        // q = {R(x,y), S(x,y)}: K(q∖R) = {x→xy}, so R^{+,q} = {x,y}.
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(x,y)").unwrap();
        assert_eq!(f_plus(&q, cqa_model::RelName::new("R")), set(&["x", "y"]));
    }

    #[test]
    fn fixed_vars_propagate() {
        // N('c', y), S(y, z): ∅ → y → z.
        let s = Arc::new(parse_schema("N[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "N('c', y), S(y, z)").unwrap();
        assert_eq!(fixed_vars(&q), set(&["y", "z"]));
    }
}
