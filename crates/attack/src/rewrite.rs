//! The Koutris–Wijsen consistent first-order rewriting for `CERTAINTY(q)`
//! with primary keys only, for queries with an acyclic attack graph.
//!
//! The construction repeatedly removes an *unattacked* atom
//! `F = R(s₁…s_k, s_{k+1}…s_n)` and emits
//!
//! ```text
//! ∃(key vars of F) [ ∃⃗w R(⃗s_key, ⃗w)
//!                    ∧ ∀⃗y ( R(⃗s_key, ⃗y) → match(⃗y, ⃗s_nonkey) ∧ φ′ ) ]
//! ```
//!
//! where `match` asserts the equalities induced by constants and repeated
//! variables at non-key positions, and `φ′` is the rewriting of `q ∖ {F}`
//! with the variables of `F` *frozen* (they act as constants in the
//! recursion; see [`cqa_model::Cst::param`]). Removing an unattacked atom
//! preserves acyclicity, so the recursion is total.
//!
//! The reproduced paper uses this construction as the base case of its
//! reduction pipeline (Appendix E): after all foreign keys are removed,
//! `CERTAINTY(q'', ∅)` is rewritten here.

use crate::attack_graph::AttackGraph;
use cqa_fo::{simplify, Formula};
use cqa_model::{Atom, Cst, Query, Term, Var};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from rewriting construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// The attack graph is cyclic: `CERTAINTY(q)` is not in FO (it is L-hard
    /// by Theorem 2 / Lemma 14).
    CyclicAttackGraph(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::CyclicAttackGraph(q) => {
                write!(f, "attack graph of {q} is cyclic; no FO rewriting exists")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// Constructs the consistent first-order rewriting of `CERTAINTY(q, ∅)`.
///
/// Returns a closed formula `φ` such that `db ⊨ φ` iff every repair of `db`
/// with respect to primary keys satisfies `q`. Fails iff the attack graph is
/// cyclic.
pub fn kw_rewrite(q: &Query) -> Result<Formula, RewriteError> {
    let raw = rewrite_rec(q)?;
    Ok(simplify(&raw.unfreeze()))
}

fn rewrite_rec(q: &Query) -> Result<Formula, RewriteError> {
    if q.is_empty() {
        return Ok(Formula::True);
    }
    let ag = AttackGraph::of(q);
    let Some(&f_rel) = ag.unattacked().first() else {
        return Err(RewriteError::CyclicAttackGraph(q.to_string()));
    };
    let atom = q.atom(f_rel).expect("unattacked atom from q").clone();
    let sig = q.sig(f_rel);
    let key_terms: Vec<Term> = atom.key_terms(sig).to_vec();
    let nonkey_terms: Vec<Term> = atom.nonkey_terms(sig).to_vec();
    let key_vars = atom.key_vars(sig);

    // Fresh ∀-variables, one per non-key position.
    let ys: Vec<Var> = nonkey_terms.iter().map(|_| Var::fresh("y")).collect();

    // Equalities the block facts must satisfy, plus the substitution sending
    // each first-occurrence non-key variable of F to its frozen ∀-variable.
    let mut eqs: Vec<Formula> = Vec::new();
    let mut subst: BTreeMap<Var, Term> = BTreeMap::new();
    for (i, t) in nonkey_terms.iter().enumerate() {
        let y = ys[i];
        match *t {
            Term::Cst(c) => eqs.push(Formula::eq(Term::Var(y), Term::Cst(c))),
            Term::Var(x) => {
                if key_vars.contains(&x) {
                    eqs.push(Formula::eq(Term::Var(y), Term::Var(x)));
                } else if let Some(prev) = subst.get(&x) {
                    let prev_y = prev
                        .as_cst()
                        .and_then(Cst::as_param)
                        .expect("subst holds frozen ∀-variables");
                    eqs.push(Formula::eq(Term::Var(y), Term::Var(prev_y)));
                } else {
                    subst.insert(x, Term::Cst(Cst::param(y)));
                }
            }
        }
    }

    // Recurse on q ∖ {F} with all variables of F frozen.
    let q2 = q.without(f_rel).substitute(&subst).freeze(&key_vars);
    let inner = rewrite_rec(&q2)?;

    let guard = Atom::new(
        f_rel,
        key_terms
            .iter()
            .copied()
            .chain(ys.iter().map(|&y| Term::Var(y)))
            .collect(),
    );
    let body = Formula::and(eqs.into_iter().chain([inner]));
    let forall = Formula::forall(
        ys.iter().copied(),
        Formula::implies(Formula::Atom(guard), body),
    );

    let ws: Vec<Var> = nonkey_terms.iter().map(|_| Var::fresh("w")).collect();
    let witness_atom = Atom::new(
        f_rel,
        key_terms
            .iter()
            .copied()
            .chain(ws.iter().map(|&w| Term::Var(w)))
            .collect(),
    );
    let witness = Formula::exists(ws, Formula::Atom(witness_atom));

    Ok(Formula::exists(
        key_vars.iter().copied(),
        Formula::and([witness, forall]),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_fo::eval::eval_closed;
    use cqa_model::parser::{parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn single_atom_all_vars() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y)").unwrap();
        let f = kw_rewrite(&q).unwrap();
        assert!(f.is_closed());
        // Certain iff the database has some R-fact.
        let yes = parse_instance(&s, "R(a,1) R(a,2)").unwrap();
        assert!(eval_closed(&yes, &f));
        let no = parse_instance(&s, "").unwrap();
        assert!(!eval_closed(&no, &f));
    }

    #[test]
    fn nonkey_constant() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let q = parse_query(&s, "R(x,'c')").unwrap();
        let f = kw_rewrite(&q).unwrap();
        // Certain iff some block consists entirely of c-facts.
        let yes = parse_instance(&s, "R(a,c) R(b,c) R(b,d)").unwrap();
        assert!(eval_closed(&yes, &f));
        let no = parse_instance(&s, "R(a,c) R(a,d) R(b,d)").unwrap();
        assert!(!eval_closed(&no, &f));
    }

    #[test]
    fn chain_query() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let f = kw_rewrite(&q).unwrap();
        // Block R(a,·) = {b, c}; S has blocks for both b and c: certain.
        let yes = parse_instance(&s, "R(a,b) R(a,c) S(b,1) S(c,2)").unwrap();
        assert!(eval_closed(&yes, &f));
        // S(c,·) missing: the repair choosing R(a,c) falsifies q.
        let no = parse_instance(&s, "R(a,b) R(a,c) S(b,1)").unwrap();
        assert!(!eval_closed(&no, &f));
    }

    #[test]
    fn repeated_nonkey_variable() {
        let s = Arc::new(parse_schema("R[3,1]").unwrap());
        let q = parse_query(&s, "R(x,y,y)").unwrap();
        let f = kw_rewrite(&q).unwrap();
        let yes = parse_instance(&s, "R(a,1,1) R(a,2,2)").unwrap();
        assert!(eval_closed(&yes, &f));
        let no = parse_instance(&s, "R(a,1,1) R(a,1,2)").unwrap();
        assert!(!eval_closed(&no, &f));
    }

    #[test]
    fn key_variable_repeated_at_nonkey_position() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let q = parse_query(&s, "R(x,x)").unwrap();
        let f = kw_rewrite(&q).unwrap();
        let yes = parse_instance(&s, "R(a,a)").unwrap();
        assert!(eval_closed(&yes, &f));
        let mixed = parse_instance(&s, "R(a,a) R(a,b)").unwrap();
        assert!(!eval_closed(&mixed, &f));
        let no = parse_instance(&s, "R(a,b)").unwrap();
        assert!(!eval_closed(&no, &f));
    }

    #[test]
    fn cyclic_attack_graph_rejected() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,x)").unwrap();
        assert!(matches!(
            kw_rewrite(&q),
            Err(RewriteError::CyclicAttackGraph(_))
        ));
    }

    #[test]
    fn constant_key_atom() {
        // q = {R('c', y), S(y)}: the R-block at key c must uniformly chain
        // into S.
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let q = parse_query(&s, "R('c',y), S(y)").unwrap();
        let f = kw_rewrite(&q).unwrap();
        let yes = parse_instance(&s, "R(c,1) R(c,2) S(1) S(2)").unwrap();
        assert!(eval_closed(&yes, &f));
        let no = parse_instance(&s, "R(c,1) R(c,2) S(1)").unwrap();
        assert!(!eval_closed(&no, &f));
        // No R(c,·) fact at all: not certain.
        let empty = parse_instance(&s, "R(d,1) S(1)").unwrap();
        assert!(!eval_closed(&empty, &f));
    }

    #[test]
    fn formula_is_closed_and_printable() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z), T(z,'c')").unwrap();
        let f = kw_rewrite(&q).unwrap();
        assert!(f.is_closed(), "rewriting must be a sentence: {f}");
        let shown = f.to_string();
        assert!(shown.contains("∃"));
        assert!(shown.contains("∀"));
    }

    #[test]
    fn composite_key() {
        let s = Arc::new(parse_schema("R[3,2]").unwrap());
        let q = parse_query(&s, "R(x,y,'v')").unwrap();
        let f = kw_rewrite(&q).unwrap();
        let yes = parse_instance(&s, "R(a,b,v)").unwrap();
        assert!(eval_closed(&yes, &f));
        let no = parse_instance(&s, "R(a,b,v) R(a,b,w)").unwrap();
        assert!(!eval_closed(&no, &f));
    }
}
