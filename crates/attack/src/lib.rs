//! # cqa-attack
//!
//! Consistent query answering for **primary keys only** — the state of the
//! art the paper builds on (Koutris & Wijsen, *Consistent query answering for
//! self-join-free conjunctive queries under primary key constraints*, TODS
//! 2017; recalled as Theorem 2 of the reproduced paper):
//!
//! * functional-dependency reasoning: `K(q)`, closures, `F^{+,q}` ([`fd`]);
//! * the **attack graph** with weak/strong attacks ([`attack_graph`]);
//! * the FO / L-complete / coNP-complete trichotomy ([`classify`]);
//! * the **consistent first-order rewriting** for queries with an acyclic
//!   attack graph ([`rewrite`]);
//! * Gaifman-style connectivity graphs `G_V(q)` used by the block-interference
//!   test of the reproduced paper ([`gaifman`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack_graph;
pub mod classify;
pub mod fd;
pub mod gaifman;
pub mod rewrite;

pub use attack_graph::AttackGraph;
pub use classify::{classify_pk, PkClass};
pub use fd::{f_plus, fixed_vars, k_of, FdSet};
pub use rewrite::{kw_rewrite, RewriteError};
