//! The exhaustive certainty oracle — ground truth for `CERTAINTY(q, FK)`.
//!
//! The oracle searches for a **falsifying ⊕-repair**:
//!
//! 1. enumerate, per block of `db`, either one fact or none (dropping a
//!    block is legitimate under foreign keys — cf. Example 4, where `∅` is a
//!    repair);
//! 2. chase the chosen facts to foreign-key consistency with fresh non-key
//!    values ([`crate::chase_fresh`]) — fresh values are optimal for
//!    falsification, because they can only be matched by variables that
//!    occur once (Lemma 24's orphan-constant argument);
//! 3. skip candidates that satisfy `q`;
//! 4. verify ⊕-minimality *exactly* ([`crate::is_delta_repair`]).
//!
//! Any candidate passing 3–4 witnesses `NotCertain`. If the enumeration is
//! exhausted without a witness and no step was truncated by limits, the
//! answer is `Certain`; otherwise `Inconclusive`.

use crate::chase::chase_fresh;
use crate::delta::is_delta_repair;
use crate::limits::SearchLimits;
use crate::pk_repairs::count_pk_repairs;
use cqa_model::{CompiledQuery, Fact, FkSet, Instance, Query};
use std::fmt;

/// The oracle's verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleOutcome {
    /// Every ⊕-repair satisfies the query.
    Certain,
    /// A falsifying ⊕-repair exists (witness included; boxed — an
    /// `Instance` with its patched index dwarfs the other variants).
    NotCertain(Box<Instance>),
    /// Search limits were hit before a verdict was reached.
    Inconclusive(String),
}

impl OracleOutcome {
    /// `true` for [`OracleOutcome::Certain`].
    pub fn is_certain(&self) -> bool {
        matches!(self, OracleOutcome::Certain)
    }

    /// `Some(bool)` for definite outcomes, `None` when inconclusive.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            OracleOutcome::Certain => Some(true),
            OracleOutcome::NotCertain(_) => Some(false),
            OracleOutcome::Inconclusive(_) => None,
        }
    }
}

impl fmt::Display for OracleOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleOutcome::Certain => write!(f, "certain"),
            OracleOutcome::NotCertain(r) => write!(f, "not certain (witness {r})"),
            OracleOutcome::Inconclusive(why) => write!(f, "inconclusive: {why}"),
        }
    }
}

/// Exhaustive certainty checker for small instances.
#[derive(Clone, Debug, Default)]
pub struct CertaintyOracle {
    /// Search limits; exceeding them yields `Inconclusive`.
    pub limits: SearchLimits,
}

impl CertaintyOracle {
    /// Oracle with default limits.
    pub fn new() -> CertaintyOracle {
        CertaintyOracle::default()
    }

    /// Oracle with custom limits.
    pub fn with_limits(limits: SearchLimits) -> CertaintyOracle {
        CertaintyOracle { limits }
    }

    /// Whether `db`'s search space fits this oracle's candidate budget —
    /// a cheap probe callers (e.g. the `cqa solve` CLI) can use to predict
    /// an [`OracleOutcome::Inconclusive`] before paying for the
    /// enumeration. [`CertaintyOracle::is_certain`] performs the same
    /// check internally before searching, so this never changes verdicts —
    /// it only lets a caller warn or re-budget up front. For `FK = ∅` the
    /// space is the number of primary-key repairs; otherwise it is
    /// [`candidate_space`].
    pub fn within_budget(&self, db: &Instance, fks: &FkSet) -> bool {
        if fks.is_empty() {
            count_pk_repairs(db) <= self.limits.max_candidates as u128
        } else {
            candidate_space(db) <= self.limits.max_candidates
        }
    }

    /// Decides `CERTAINTY(q, FK)` on `db` by exhaustive search.
    ///
    /// The query is compiled once; the (exponentially many) candidate
    /// repairs reuse the compiled join for their `⊨ q` checks.
    pub fn is_certain(&self, db: &Instance, q: &Query, fks: &FkSet) -> OracleOutcome {
        let cq = CompiledQuery::new(q);
        if fks.is_empty() {
            return self.pk_only(db, &cq);
        }
        let mut blocks: Vec<Vec<Fact>> = Vec::new();
        for rel in db.populated_relations() {
            for (_, facts) in db.blocks(rel) {
                blocks.push(facts);
            }
        }
        let space = candidate_space(db);
        if space > self.limits.max_candidates {
            return OracleOutcome::Inconclusive(format!(
                "candidate space {space} exceeds limit {}",
                self.limits.max_candidates
            ));
        }

        let mut inconclusive: Option<String> = None;
        let mut chosen: Vec<Fact> = Vec::new();
        let outcome = self.search(db, &cq, fks, &blocks, 0, &mut chosen, &mut inconclusive);
        match outcome {
            Some(witness) => OracleOutcome::NotCertain(Box::new(witness)),
            None => match inconclusive {
                Some(why) => OracleOutcome::Inconclusive(why),
                None => OracleOutcome::Certain,
            },
        }
    }

    fn pk_only(&self, db: &Instance, q: &CompiledQuery) -> OracleOutcome {
        if count_pk_repairs(db) > self.limits.max_candidates as u128 {
            return OracleOutcome::Inconclusive(format!(
                "{} primary-key repairs exceed limit {}",
                count_pk_repairs(db),
                self.limits.max_candidates
            ));
        }
        for r in crate::pk_repairs::pk_repairs(db) {
            if !q.satisfies(&r) {
                return OracleOutcome::NotCertain(Box::new(r));
            }
        }
        OracleOutcome::Certain
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        db: &Instance,
        q: &CompiledQuery,
        fks: &FkSet,
        blocks: &[Vec<Fact>],
        idx: usize,
        chosen: &mut Vec<Fact>,
        inconclusive: &mut Option<String>,
    ) -> Option<Instance> {
        if idx == blocks.len() {
            let mut base = Instance::new(db.schema().clone());
            for f in chosen.iter() {
                base.insert(f.clone()).expect("db fact");
            }
            let (candidate, _) = match chase_fresh(&base, fks, self.limits.max_chase_inserts) {
                Ok(x) => x,
                Err(e) => {
                    *inconclusive = Some(e.to_string());
                    return None;
                }
            };
            if q.satisfies(&candidate) {
                return None;
            }
            match is_delta_repair(db, &candidate, fks, &self.limits) {
                Some(true) => return Some(candidate),
                Some(false) => return None,
                None => {
                    *inconclusive =
                        Some("⊕-minimality check exceeded limits".to_string());
                    return None;
                }
            }
        }
        // Option: drop the block entirely.
        if let Some(w) = self.search(db, q, fks, blocks, idx + 1, chosen, inconclusive) {
            return Some(w);
        }
        // Option: keep one fact.
        for f in &blocks[idx] {
            chosen.push(f.clone());
            let w = self.search(db, q, fks, blocks, idx + 1, chosen, inconclusive);
            chosen.pop();
            if w.is_some() {
                return w;
            }
        }
        None
    }
}

/// The size of the oracle's block-choice search space on `db` under
/// foreign keys: per block, keep one fact or drop the block, so
/// `∏ (|block| + 1)` over all blocks (saturating). This is the quantity
/// [`SearchLimits::max_candidates`] bounds — exposed so callers (the
/// unified solver's budgeted fallback) can report how far a budget goes
/// before committing to the search.
pub fn candidate_space(db: &Instance) -> u64 {
    let mut space: u64 = 1;
    for rel in db.populated_relations() {
        for (_, facts) in db.blocks(rel) {
            space = space.saturating_mul(facts.len() as u64 + 1);
        }
    }
    space
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn candidate_space_counts_block_choices() {
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        // Two R-blocks of 2 facts each and one S-block of 1: (2+1)²·(1+1).
        let db = parse_instance(&s, "R(k0,a) R(k0,b) R(k1,a) R(k1,b) S(a)").unwrap();
        assert_eq!(candidate_space(&db), 18);
        assert_eq!(candidate_space(&Instance::new(s.clone())), 1);

        let fks = cqa_model::parser::parse_fks(&s, "R[2] -> S").unwrap();
        let roomy = CertaintyOracle::new();
        assert!(roomy.within_budget(&db, &fks));
        let tight = CertaintyOracle::with_limits(SearchLimits::budgeted(17));
        assert!(!tight.within_budget(&db, &fks));
        // FK-free budgeting counts primary-key repairs (2·2 = 4) instead.
        let empty = cqa_model::FkSet::empty(s);
        assert!(CertaintyOracle::with_limits(SearchLimits::budgeted(4))
            .within_budget(&db, &empty));
        assert!(!CertaintyOracle::with_limits(SearchLimits::budgeted(3))
            .within_budget(&db, &empty));
    }

    #[test]
    fn pk_only_path_matches_enumeration() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let fks = cqa_model::FkSet::empty(s.clone());
        let oracle = CertaintyOracle::new();

        let yes = parse_instance(&s, "R(a,b) R(a,c) S(b,1) S(c,2)").unwrap();
        assert!(oracle.is_certain(&yes, &q, &fks).is_certain());

        let no = parse_instance(&s, "R(a,b) R(a,c) S(b,1)").unwrap();
        assert_eq!(oracle.is_certain(&no, &q, &fks).as_bool(), Some(false));
    }

    #[test]
    fn example_4_empty_repair_falsifies() {
        // q = {R(x,y), S(y,z), T(z)} with FK = {R[2]→S, S[2]→T} and
        // db = {R(a,b), S(b,c)}: r₁ = {} is a ⊕-repair falsifying q.
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z), T(z)").unwrap();
        let fks = parse_fks(&s, "R[2] -> S, S[2] -> T").unwrap();
        let db = parse_instance(&s, "R(a,b) S(b,c)").unwrap();
        let oracle = CertaintyOracle::new();
        match oracle.is_certain(&db, &q, &fks) {
            OracleOutcome::NotCertain(witness) => {
                assert!(!cqa_model::satisfies(&witness, &q));
            }
            other => panic!("expected NotCertain, got {other}"),
        }
    }

    #[test]
    fn section4_blockchain_n1() {
        // §4's construction at n = 1: q = {N(x,'c',y), O(y)}, FK = {N[3]→O},
        // db = {N(b1,c,1), N(b1,d,2), N(b2,□,2), O(1)}.
        // The paper: yes-instance iff □ = c.
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let oracle = CertaintyOracle::new();

        let yes = parse_instance(&s, "N(b1,c,1) N(b1,d,2) N(b2,c,2) O(1)").unwrap();
        assert!(
            oracle.is_certain(&yes, &q, &fks).is_certain(),
            "□ = c must be a yes-instance"
        );

        let no = parse_instance(&s, "N(b1,c,1) N(b1,d,2) N(b2,d,3) O(1)").unwrap();
        assert_eq!(
            oracle.is_certain(&no, &q, &fks).as_bool(),
            Some(false),
            "□ = d must be a no-instance"
        );

        // Removing O(1) makes {} a repair: a no-instance (paper's db′).
        let no2 = parse_instance(&s, "N(b1,c,1) N(b1,d,2) N(b2,c,2)").unwrap();
        assert_eq!(oracle.is_certain(&no2, &q, &fks).as_bool(), Some(false));
    }

    #[test]
    fn foreign_key_insertion_can_force_satisfaction() {
        // q = {N(x,y), O(y)} with FK = {N[2]→O}: any kept N-fact forces an
        // O-fact with the right key, so q is certain whenever every repair
        // must keep some N-fact. With a single consistent N-fact, it must.
        let s = Arc::new(parse_schema("N[2,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        let oracle = CertaintyOracle::new();

        // N(a,b) dangling: {} is a repair (drop it) → not certain.
        let db1 = parse_instance(&s, "N(a,b)").unwrap();
        assert_eq!(oracle.is_certain(&db1, &q, &fks).as_bool(), Some(false));

        // N(a,b) with O(b): the only repair is db itself → certain.
        let db2 = parse_instance(&s, "N(a,b) O(b)").unwrap();
        assert!(oracle.is_certain(&db2, &q, &fks).is_certain());
    }

    #[test]
    fn inconclusive_on_cyclic_divergence() {
        // R[2] → R: the fresh chase diverges; with a kept dangling fact the
        // oracle must admit inconclusiveness rather than guess, unless the
        // drop-everything repair already falsifies the query (it does here,
        // so the oracle answers definitely).
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let q = parse_query(&s, "R(x,x)").unwrap();
        let fks = parse_fks(&s, "R[2] -> R").unwrap();
        let db = parse_instance(&s, "R(a,b)").unwrap();
        let oracle = CertaintyOracle::new();
        // {} is a repair falsifying q → definite NotCertain despite cycles.
        assert_eq!(oracle.is_certain(&db, &q, &fks).as_bool(), Some(false));
    }

    #[test]
    fn candidate_space_limit() {
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y)").unwrap();
        let fks = parse_fks(&s, "R[2] -> S").unwrap();
        let mut text = String::new();
        for i in 0..20 {
            text.push_str(&format!("R(k{i},a) R(k{i},b) "));
        }
        let db = parse_instance(&s, &text).unwrap();
        let oracle = CertaintyOracle::with_limits(SearchLimits {
            max_candidates: 100,
            ..SearchLimits::default()
        });
        assert!(matches!(
            oracle.is_certain(&db, &q, &fks),
            OracleOutcome::Inconclusive(_)
        ));
    }

    #[test]
    fn hitting_max_candidates_is_inconclusive_never_certain() {
        // Example 4's dangling-chain pattern, widened: no T-fact exists, so
        // every consistent subset is ∅ — a ⊕-repair falsifying q. Ground
        // truth is therefore NotCertain; with max_candidates below the
        // candidate space (3·3·2 = 18: each R-block drops or keeps one of
        // two facts, the S-block drops or keeps its fact) the oracle must
        // answer Inconclusive — a false Certain here would poison every
        // downstream cross-validation.
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z), T(z)").unwrap();
        let fks = parse_fks(&s, "R[2] -> S, S[2] -> T").unwrap();
        let db =
            parse_instance(&s, "R(k0,b0) R(k0,b1) R(k1,b0) R(k1,b1) S(b0,c)").unwrap();

        let unlimited = CertaintyOracle::new().is_certain(&db, &q, &fks);
        assert_eq!(unlimited.as_bool(), Some(false), "ground truth: not certain");

        for max in [1u64, 2, 5, 17] {
            let tight = CertaintyOracle::with_limits(SearchLimits {
                max_candidates: max,
                ..SearchLimits::default()
            })
            .is_certain(&db, &q, &fks);
            assert!(
                matches!(tight, OracleOutcome::Inconclusive(_)),
                "limit {max} must be inconclusive, got {tight}"
            );
            assert_eq!(tight.as_bool(), None, "inconclusive must be skippable");
        }
    }

    #[test]
    fn pk_only_limit_is_inconclusive_never_certain() {
        // Same invariant on the FK-free path: ground truth NotCertain, and
        // a repair-count limit must yield Inconclusive, not Certain.
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y)").unwrap();
        let fks = cqa_model::FkSet::empty(s.clone());
        let db = parse_instance(&s, "R(k0,a) R(k0,b) R(k1,a) R(k1,b) S(a)").unwrap();
        assert_eq!(
            CertaintyOracle::new().is_certain(&db, &q, &fks).as_bool(),
            Some(false)
        );
        let tight = CertaintyOracle::with_limits(SearchLimits {
            max_candidates: 3, // 2·2 = 4 pk-repairs exceed this
            ..SearchLimits::default()
        })
        .is_certain(&db, &q, &fks);
        assert!(matches!(tight, OracleOutcome::Inconclusive(_)), "{tight}");
        assert_eq!(tight.as_bool(), None, "inconclusive must be skippable");
    }

    #[test]
    fn outcome_display() {
        assert_eq!(OracleOutcome::Certain.to_string(), "certain");
        assert!(OracleOutcome::Inconclusive("x".into())
            .to_string()
            .contains("inconclusive"));
    }
}
