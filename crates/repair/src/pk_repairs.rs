//! Primary-key repairs: one fact per block (paper §3.1).
//!
//! With `FK = ∅`, the ⊕-repairs of `db` are exactly the maximal subsets with
//! no two key-equal facts — the products of choosing one fact from every
//! block. Insertions never occur (dropping an inserted fact always yields a
//! strictly ⊕-closer consistent instance), so enumeration is direct.

use cqa_model::{CompiledQuery, Fact, Instance, Query};

/// Enumerates all primary-key repairs of `db`.
///
/// The number of repairs is the product of block sizes, so this is for small
/// instances and ground-truth testing (which is its purpose).
pub fn pk_repairs(db: &Instance) -> Vec<Instance> {
    let mut blocks: Vec<Vec<Fact>> = Vec::new();
    for rel in db.populated_relations() {
        for (_, facts) in db.blocks(rel) {
            blocks.push(facts);
        }
    }
    let mut out = Vec::new();
    let mut current: Vec<Fact> = Vec::new();
    build(db, &blocks, 0, &mut current, &mut out);
    out
}

fn build(
    db: &Instance,
    blocks: &[Vec<Fact>],
    idx: usize,
    current: &mut Vec<Fact>,
    out: &mut Vec<Instance>,
) {
    if idx == blocks.len() {
        let mut r = Instance::new(db.schema().clone());
        for f in current.iter() {
            r.insert(f.clone()).expect("db fact");
        }
        out.push(r);
        return;
    }
    for f in &blocks[idx] {
        current.push(f.clone());
        build(db, blocks, idx + 1, current, out);
        current.pop();
    }
}

/// The number of primary-key repairs (the product of block sizes).
pub fn count_pk_repairs(db: &Instance) -> u128 {
    let mut n: u128 = 1;
    for rel in db.populated_relations() {
        for (_, facts) in db.blocks(rel) {
            n = n.saturating_mul(facts.len() as u128);
        }
    }
    n
}

/// `CERTAINTY(q)` by exhaustive repair enumeration: does every primary-key
/// repair of `db` satisfy `q`?
pub fn pk_certain(db: &Instance, q: &Query) -> bool {
    let mut blocks: Vec<Vec<Fact>> = Vec::new();
    for rel in db.populated_relations() {
        for (_, facts) in db.blocks(rel) {
            blocks.push(facts);
        }
    }
    let mut current: Vec<Fact> = Vec::new();
    // Compile once; every enumerated repair reuses the compiled join.
    let cq = CompiledQuery::new(q);
    all_satisfy(db, &cq, &blocks, 0, &mut current)
}

fn all_satisfy(
    db: &Instance,
    q: &CompiledQuery,
    blocks: &[Vec<Fact>],
    idx: usize,
    current: &mut Vec<Fact>,
) -> bool {
    if idx == blocks.len() {
        let mut r = Instance::new(db.schema().clone());
        for f in current.iter() {
            r.insert(f.clone()).expect("db fact");
        }
        return q.satisfies(&r);
    }
    for f in &blocks[idx] {
        current.push(f.clone());
        let ok = all_satisfy(db, q, blocks, idx + 1, current);
        current.pop();
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn repair_count_is_block_product() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let db = parse_instance(&s, "R(a,1) R(a,2) R(b,1) S(x,1) S(x,2) S(x,3)").unwrap();
        assert_eq!(count_pk_repairs(&db), 2 * 3);
        let repairs = pk_repairs(&db);
        assert_eq!(repairs.len(), 6);
        for r in &repairs {
            assert!(r.satisfies_pk());
            assert!(r.subset_of(&db));
            assert_eq!(r.len(), 3); // one per block
        }
        // All repairs distinct.
        for i in 0..repairs.len() {
            for j in (i + 1)..repairs.len() {
                assert_ne!(repairs[i], repairs[j]);
            }
        }
    }

    #[test]
    fn certainty_by_enumeration() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        // Certain: both choices of the R-block chain into S.
        let yes = parse_instance(&s, "R(a,b) R(a,c) S(b,1) S(c,2)").unwrap();
        assert!(pk_certain(&yes, &q));
        // Not certain: the repair picking R(a,c) fails.
        let no = parse_instance(&s, "R(a,b) R(a,c) S(b,1)").unwrap();
        assert!(!pk_certain(&no, &q));
    }

    #[test]
    fn consistent_db_single_repair() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let db = parse_instance(&s, "R(a,1) R(b,2)").unwrap();
        let repairs = pk_repairs(&db);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0], db);
    }

    #[test]
    fn empty_db() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let db = Instance::new(s.clone());
        assert_eq!(pk_repairs(&db).len(), 1);
        let q = parse_query(&s, "R(x,y)").unwrap();
        assert!(!pk_certain(&db, &q));
    }
}
