//! Resource limits for the exhaustive repair search.
//!
//! The oracle is exponential by design (it is the ground truth, not the
//! algorithm). Limits keep it honest: when a search would exceed them, the
//! oracle reports [`crate::OracleOutcome::Inconclusive`] instead of guessing.

/// Limits for repair enumeration and chase expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum number of candidate block-choice combinations to enumerate.
    pub max_candidates: u64,
    /// Maximum number of facts the chase may insert per candidate.
    pub max_chase_inserts: usize,
    /// Maximum number of dominating instances examined per ⊕-minimality
    /// check.
    pub max_domination_checks: u64,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_candidates: 1_000_000,
            max_chase_inserts: 64,
            max_domination_checks: 4_000_000,
        }
    }
}

impl SearchLimits {
    /// A small limit set for quick tests.
    pub fn small() -> Self {
        SearchLimits {
            max_candidates: 50_000,
            max_chase_inserts: 16,
            max_domination_checks: 200_000,
        }
    }

    /// A limit set derived from one scalar *budget* — the maximum number of
    /// candidate ⊕-repairs the search may enumerate. The ⊕-minimality
    /// budget scales with it (each surviving candidate triggers a
    /// domination sweep); the chase bound keeps its default. This is the
    /// knob the unified solver's opt-in fallback route exposes: exceeding
    /// it yields [`crate::OracleOutcome::Inconclusive`], never a guess.
    pub fn budgeted(max_candidates: u64) -> Self {
        SearchLimits {
            max_candidates,
            max_domination_checks: max_candidates.saturating_mul(4),
            ..SearchLimits::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous() {
        let l = SearchLimits::default();
        assert!(l.max_candidates >= 100_000);
        assert!(l.max_chase_inserts >= 16);
    }
}
