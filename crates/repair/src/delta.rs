//! The ⊕-closeness preorder and exact ⊕-repair verification (paper §3.3).
//!
//! `r ⪯_db s` iff `db ⊕ r ⊆ db ⊕ s`. Equivalently: `r` keeps at least the
//! `db`-facts `s` keeps (`s ∩ db ⊆ r ∩ db`) and inserts at most the facts
//! `s` inserts (`r ∖ db ⊆ s ∖ db`). A ⊕-repair is a consistent instance that
//! is `≺_db`-minimal among consistent instances.
//!
//! **Finite verification.** Any instance `s ≺_db r` satisfies
//! `s ∖ db ⊆ r ∖ db` and `s ∩ db ⊇ r ∩ db`, so it lives inside the finite
//! universe `db ∪ r`. Minimality of a finite candidate is therefore exactly
//! decidable by enumerating: per `db`-block, either the fact `r` chose (it
//! must stay) or — for blocks `r` skipped — any single fact or none; plus any
//! subset of `r ∖ db`. [`is_delta_repair`] does precisely this.

use crate::limits::SearchLimits;
use cqa_model::{Delta, Fact, FkSet, Instance};

/// The mutation batch ([`cqa_model::Delta`]) that carries `db` to `target`:
/// removals of `db ∖ target` followed by insertions of `target ∖ db` — the
/// literal `⊕`-difference as an applicable edit script. Applying it with
/// [`Instance::apply`] turns `db` into (a content-equal copy of) `target`,
/// which is how a repair chosen by the oracle becomes the input of an
/// incremental re-answer session instead of a fresh solve.
pub fn delta_to(db: &Instance, target: &Instance) -> Delta {
    let mut delta = Delta::new();
    for f in db.facts().filter(|f| !target.contains(f)) {
        delta.remove(f);
    }
    for f in target.facts().filter(|f| !db.contains(f)) {
        delta.insert(f);
    }
    delta
}

/// `r ⪯_db s`: is `r` at least as ⊕-close to `db` as `s`?
pub fn closer_eq(db: &Instance, r: &Instance, s: &Instance) -> bool {
    let dr = db.symmetric_difference(r);
    let ds = db.symmetric_difference(s);
    dr.is_subset(&ds)
}

/// `r ≺_db s`: strictly ⊕-closer.
pub fn strictly_closer(db: &Instance, r: &Instance, s: &Instance) -> bool {
    let dr = db.symmetric_difference(r);
    let ds = db.symmetric_difference(s);
    dr.is_subset(&ds) && dr != ds
}

/// Exactly decides whether `r` is a ⊕-repair of `db` with respect to
/// `PK ∪ FK`. Returns `None` when the enumeration would exceed `limits`.
pub fn is_delta_repair(
    db: &Instance,
    r: &Instance,
    fks: &FkSet,
    limits: &SearchLimits,
) -> Option<bool> {
    if !r.is_consistent(fks) {
        return Some(false);
    }

    // Facts r inserted (outside db) and db-blocks r did not pick from.
    let inserted: Vec<Fact> = r.facts().filter(|f| !db.contains(f)).collect();
    let kept: Instance = r.intersection(db);

    let mut open_blocks: Vec<Vec<Fact>> = Vec::new();
    for rel in db.populated_relations() {
        for (key, facts) in db.blocks(rel) {
            let picked = kept.block(rel, &key);
            if picked.is_empty() {
                open_blocks.push(facts);
            }
        }
    }

    // Search space size: Π(|block|+1) × 2^|inserted|.
    let mut space: u64 = 1;
    for b in &open_blocks {
        space = space.saturating_mul(b.len() as u64 + 1);
    }
    space = space.saturating_mul(1u64.checked_shl(inserted.len() as u32).unwrap_or(u64::MAX));
    if space > limits.max_domination_checks {
        return None;
    }

    // Enumerate candidates s: kept-facts ∪ (choice per open block) ∪ (subset
    // of inserted). s ≺_db r iff s picks some open-block fact (more of db) or
    // drops some inserted fact — i.e. s ≠ r.
    let mut dominated = false;
    enumerate(
        &kept,
        &open_blocks,
        0,
        &inserted,
        &mut Vec::new(),
        fks,
        &mut dominated,
    );
    Some(!dominated)
}

fn enumerate(
    kept: &Instance,
    open_blocks: &[Vec<Fact>],
    block_idx: usize,
    inserted: &[Fact],
    extra_db_facts: &mut Vec<Fact>,
    fks: &FkSet,
    dominated: &mut bool,
) {
    if *dominated {
        return;
    }
    if block_idx == open_blocks.len() {
        // Choose subsets of inserted facts. Any candidate that differs from r
        // (extra db fact picked, or insert dropped) and is consistent
        // dominates r.
        let n = inserted.len();
        for mask in 0..(1u64 << n) {
            let drops_insert = mask != (1u64 << n) - 1;
            let adds_fact = !extra_db_facts.is_empty();
            if !drops_insert && !adds_fact {
                continue; // this candidate is r itself
            }
            let mut s = kept.clone();
            for f in extra_db_facts.iter() {
                s.insert(f.clone()).expect("db fact");
            }
            for (i, f) in inserted.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(f.clone()).expect("insert fact");
                }
            }
            if s.is_consistent(fks) {
                *dominated = true;
                return;
            }
        }
        return;
    }
    // Option 1: keep skipping this block.
    enumerate(
        kept,
        open_blocks,
        block_idx + 1,
        inserted,
        extra_db_facts,
        fks,
        dominated,
    );
    // Option 2: pick one fact from it.
    for f in &open_blocks[block_idx] {
        extra_db_facts.push(f.clone());
        enumerate(
            kept,
            open_blocks,
            block_idx + 1,
            inserted,
            extra_db_facts,
            fks,
            dominated,
        );
        extra_db_facts.pop();
        if *dominated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_schema};
    use std::sync::Arc;

    #[test]
    fn delta_to_carries_db_onto_the_repair() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
        let db = parse_instance(&s, "R(a,b) S(b,c)").unwrap();
        let repair = parse_instance(&s, "R(a,b) S(b,1) T(1)").unwrap();

        let delta = delta_to(&db, &repair);
        // |db ∖ r| = 1 (S(b,c)), |r ∖ db| = 2 (S(b,1), T(1)).
        assert_eq!(delta.len(), 3);

        let mut patched = db.clone();
        let effective = patched.apply(&delta).unwrap();
        assert_eq!(effective, 3);
        assert!(patched.symmetric_difference(&repair).is_empty());
        assert_eq!(patched.len(), repair.len());

        // The identity edit is empty, and applying it is a no-op.
        assert!(delta_to(&db, &db).is_empty());
    }

    #[test]
    fn preorder_basics() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let db = parse_instance(&s, "R(a,1) R(a,2)").unwrap();
        let r1 = parse_instance(&s, "R(a,1)").unwrap();
        let r2 = parse_instance(&s, "").unwrap();
        assert!(closer_eq(&db, &r1, &r2));
        assert!(strictly_closer(&db, &r1, &r2));
        assert!(!closer_eq(&db, &r2, &r1));
        // Reflexivity, antisymmetric strictness.
        assert!(closer_eq(&db, &r1, &r1));
        assert!(!strictly_closer(&db, &r1, &r1));
    }

    #[test]
    fn paper_example_4_repairs() {
        // q = {R(x,y), S(y,z), T(z)}, FK = {R[2]→S, S[2]→T},
        // db = {R(a,b), S(b,c)}. The paper lists three ⊕-repairs:
        //   r1 = {}, r2 = {R(a,b), S(b,1), T(1)}, r3 = {R(a,b), S(b,c), T(c)}.
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
        let fks = parse_fks(&s, "R[2] -> S, S[2] -> T").unwrap();
        let db = parse_instance(&s, "R(a,b) S(b,c)").unwrap();
        let limits = SearchLimits::default();

        let r1 = parse_instance(&s, "").unwrap();
        let r2 = parse_instance(&s, "R(a,b) S(b,1) T(1)").unwrap();
        let r3 = parse_instance(&s, "R(a,b) S(b,c) T(c)").unwrap();
        assert_eq!(is_delta_repair(&db, &r1, &fks, &limits), Some(true));
        assert_eq!(is_delta_repair(&db, &r2, &fks, &limits), Some(true));
        assert_eq!(is_delta_repair(&db, &r3, &fks, &limits), Some(true));

        // r2 and r3 are ⪯_db-incomparable (the paper's point).
        assert!(!closer_eq(&db, &r2, &r3));
        assert!(!closer_eq(&db, &r3, &r2));

        // {R(a,b)} alone is not even consistent; {S(b,c)} is not a repair
        // because r3 keeps more of db with fewer deletions... in fact
        // {S(b,c), T(c)} is dominated by r3.
        let not_consistent = parse_instance(&s, "R(a,b)").unwrap();
        assert_eq!(
            is_delta_repair(&db, &not_consistent, &fks, &limits),
            Some(false)
        );
        let dominated = parse_instance(&s, "S(b,c) T(c)").unwrap();
        assert_eq!(is_delta_repair(&db, &dominated, &fks, &limits), Some(false));
    }

    #[test]
    fn pk_only_repair_check() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let fks = cqa_model::FkSet::empty(s.clone());
        let db = parse_instance(&s, "R(a,1) R(a,2) R(b,1)").unwrap();
        let limits = SearchLimits::default();

        let good = parse_instance(&s, "R(a,1) R(b,1)").unwrap();
        assert_eq!(is_delta_repair(&db, &good, &fks, &limits), Some(true));

        // Dropping a whole block is not minimal for PK-only.
        let partial = parse_instance(&s, "R(a,1)").unwrap();
        assert_eq!(is_delta_repair(&db, &partial, &fks, &limits), Some(false));

        // Keeping both facts of a block is inconsistent.
        let bad = parse_instance(&s, "R(a,1) R(a,2) R(b,1)").unwrap();
        assert_eq!(is_delta_repair(&db, &bad, &fks, &limits), Some(false));
    }

    #[test]
    fn inserting_unforced_facts_is_not_minimal() {
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let fks = cqa_model::FkSet::empty(s.clone());
        let db = parse_instance(&s, "R(a,1)").unwrap();
        let padded = parse_instance(&s, "R(a,1) S(zz)").unwrap();
        assert_eq!(
            is_delta_repair(&db, &padded, &fks, &SearchLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn limits_respected() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let fks = cqa_model::FkSet::empty(s.clone());
        // 12 open blocks of 3 facts → 4^12 ≈ 1.6e7 candidates.
        let mut text = String::new();
        for i in 0..12 {
            for j in 0..3 {
                text.push_str(&format!("R(k{i},v{j}) "));
            }
        }
        let db = parse_instance(&s, &text).unwrap();
        let empty = parse_instance(&s, "").unwrap();
        let tight = SearchLimits {
            max_domination_checks: 1000,
            ..SearchLimits::default()
        };
        assert_eq!(is_delta_repair(&db, &empty, &fks, &tight), None);
    }
}
