//! Pre-repairs (paper Appendix D, Definitions 29–30 and Theorem 32).
//!
//! A database `r` is *irrelevantly dangling* with respect to `(db, FK, q)`
//! if every fact `R(⃗a, b_{k+1}, …, b_n)` of `r` dangling for some
//! `R[j] → S ∈ FK` satisfies: the set `P` of non-primary-key positions
//! `(R, i)` whose value `b_i` is orphan in `r ∪ db` and outside `const(q)`
//! (1) is **not obedient** over `FK` and `q`, and (2) contains `(R, j)`.
//! Intuitively: the dangling values are fresh junk that Lemma 24 can close
//! off with facts irrelevant to `q`.
//!
//! A *pre-repair* is a `≺^∩_db`-minimal instance satisfying the primary keys
//! and irrelevant danglingness, where `r ≺^∩_db s` iff `r ⪯_db s` and
//! `s ∩ db ⊊ r ∩ db`. Theorem 32: every ⊕-repair satisfies `q` iff every
//! pre-repair does — the foundation of the paper's NL-hardness proof, which
//! we expose for testing and inspection.

use cqa_model::{FkSet, Instance, Position, Query};
use std::collections::BTreeSet;

/// `r ≺^∩_db s`: `r ⪯_db s` and `s ∩ db ⊊ r ∩ db`.
pub fn cap_closer(db: &Instance, r: &Instance, s: &Instance) -> bool {
    let r_cap = r.intersection(db);
    let s_cap = s.intersection(db);
    crate::delta::closer_eq(db, r, s) && s_cap.subset_of(&r_cap) && s_cap != r_cap
}

/// Whether `r` is irrelevantly dangling with respect to `(db, fks, q)`
/// (Definition 29). The obedience test is injected to avoid a dependency on
/// `cqa-core` (pass `cqa_core::obedience::is_obedient_set`).
pub fn is_irrelevantly_dangling(
    r: &Instance,
    db: &Instance,
    fks: &FkSet,
    q: &Query,
    is_obedient_set: &dyn Fn(&Query, &FkSet, &BTreeSet<Position>) -> bool,
) -> bool {
    let union = r.union(db);
    let q_consts = q.consts();
    for fact in r.facts() {
        for fk in fks.outgoing(fact.rel) {
            if !r.is_dangling(&fact, &fk) {
                continue;
            }
            // P: non-key positions whose value is orphan in r ∪ db and
            // outside const(q).
            let sig = r.sig(fact.rel);
            let p: BTreeSet<Position> = sig
                .nonkey_positions()
                .filter(|&i| {
                    let v = fact.args[i - 1];
                    !q_consts.contains(&v) && union.is_orphan_const(v)
                })
                .map(|i| Position::new(fact.rel, i))
                .collect();
            // (2) the dangling position must be in P…
            if !p.contains(&Position::new(fact.rel, fk.pos)) {
                return false;
            }
            // (1) …and P must be disobedient.
            if is_obedient_set(q, fks, &p) {
                return false;
            }
        }
    }
    true
}

/// Whether `r` satisfies the two pre-repair conditions (PK + irrelevantly
/// dangling); `≺^∩_db`-minimality is the remaining pre-repair requirement
/// (checked by the callers that enumerate candidates).
pub fn satisfies_pre_repair_conditions(
    r: &Instance,
    db: &Instance,
    fks: &FkSet,
    q: &Query,
    is_obedient_set: &dyn Fn(&Query, &FkSet, &BTreeSet<Position>) -> bool,
) -> bool {
    r.satisfies_pk() && is_irrelevantly_dangling(r, db, fks, q, is_obedient_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    /// Test-only obedience stand-in: in the §4 query every non-empty
    /// position set of N containing (N,2) is disobedient (the constant 'c'
    /// sits at (N,2)'s closure... we emulate the relevant verdicts for the
    /// fixtures used here). The real syntactic test lives in `cqa-core`; the
    /// cross-crate integration is exercised in `tests/` at the workspace
    /// root.
    fn emulated_obedience(q: &Query, _fks: &FkSet, p: &BTreeSet<Position>) -> bool {
        // For q = {N(x,'c',y), O(y)}: P = {(N,3)} is obedient; any set
        // containing (N,2) is not; the empty set is obedient.
        let n = cqa_model::RelName::new("N");
        if p.is_empty() {
            return true;
        }
        if q.contains(n) && p.contains(&Position::new(n, 2)) {
            return false;
        }
        true
    }

    #[test]
    fn cap_closer_ordering() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let db = parse_instance(&s, "R(a,1) R(b,2)").unwrap();
        let keeps_more = parse_instance(&s, "R(a,1) R(b,2)").unwrap();
        let keeps_less = parse_instance(&s, "R(a,1)").unwrap();
        assert!(cap_closer(&db, &keeps_more, &keeps_less));
        assert!(!cap_closer(&db, &keeps_less, &keeps_more));
        assert!(!cap_closer(&db, &keeps_more, &keeps_more));
    }

    #[test]
    fn consistent_subset_is_irrelevantly_dangling_when_nothing_dangles() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let db = parse_instance(&s, "N(b1,c,1) O(1)").unwrap();
        let r = db.clone();
        assert!(is_irrelevantly_dangling(&r, &db, &fks, &q, &emulated_obedience));
    }

    #[test]
    fn dangling_on_query_constant_is_not_irrelevant() {
        // The dangling value is the query constant 'c' itself: P excludes
        // the position, so the instance is NOT irrelevantly dangling.
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let db = parse_instance(&s, "N(b1,d,c)").unwrap();
        let r = db.clone();
        assert!(!is_irrelevantly_dangling(&r, &db, &fks, &q, &emulated_obedience));
    }

    #[test]
    fn dangling_on_shared_value_is_not_irrelevant() {
        // The dangling value 7 occurs twice in r ∪ db (not orphan): P
        // excludes the position.
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let db = parse_instance(&s, "N(b1,d,7) N(b2,d,7)").unwrap();
        let r = db.clone();
        assert!(!is_irrelevantly_dangling(&r, &db, &fks, &q, &emulated_obedience));
    }

    #[test]
    fn pre_repair_conditions_require_pk() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let db = parse_instance(&s, "N(b1,c,1) N(b1,d,2) O(1)").unwrap();
        assert!(!satisfies_pre_repair_conditions(
            &db, &db, &fks, &q, &emulated_obedience
        ));
        let r = parse_instance(&s, "N(b1,c,1) O(1)").unwrap();
        assert!(satisfies_pre_repair_conditions(
            &r, &db, &fks, &q, &emulated_obedience
        ));
    }
}
