//! Repair counting — the `#CERTAINTY(q)` problem family surveyed in the
//! paper's §2 (Maslowski & Wijsen; Calautti, Console & Pieris): count (or
//! estimate) how many primary-key repairs satisfy a Boolean query.
//!
//! Exact counting is `#P`-hard in general, so alongside the exact
//! enumeration counter this module provides the randomized approximation
//! used in the PODS 2021 benchmarking paper cited by §2: sample repairs
//! uniformly (choose one fact per block, independently and uniformly) and
//! report the satisfaction ratio.

use cqa_model::{CompiledQuery, Fact, Instance, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact count of primary-key repairs satisfying `q`, by enumeration.
/// Exponential — meant for ground truth on small instances.
pub fn count_satisfying_pk_repairs(db: &Instance, q: &Query) -> u128 {
    let mut blocks: Vec<Vec<Fact>> = Vec::new();
    for rel in db.populated_relations() {
        for (_, facts) in db.blocks(rel) {
            blocks.push(facts);
        }
    }
    let mut current: Vec<Fact> = Vec::new();
    let cq = CompiledQuery::new(q);
    count_rec(db, &cq, &blocks, 0, &mut current)
}

fn count_rec(
    db: &Instance,
    q: &CompiledQuery,
    blocks: &[Vec<Fact>],
    idx: usize,
    current: &mut Vec<Fact>,
) -> u128 {
    if idx == blocks.len() {
        let mut r = Instance::new(db.schema().clone());
        for f in current.iter() {
            r.insert(f.clone()).expect("db fact");
        }
        return u128::from(q.satisfies(&r));
    }
    let mut total = 0u128;
    for f in &blocks[idx] {
        current.push(f.clone());
        total += count_rec(db, q, blocks, idx + 1, current);
        current.pop();
    }
    total
}

/// The exact fraction of primary-key repairs satisfying `q`
/// (`count / total`), as a float.
pub fn exact_satisfaction_ratio(db: &Instance, q: &Query) -> f64 {
    let total = crate::pk_repairs::count_pk_repairs(db);
    if total == 0 {
        return 0.0;
    }
    count_satisfying_pk_repairs(db, q) as f64 / total as f64
}

/// Monte-Carlo estimate of the fraction of primary-key repairs satisfying
/// `q`: draws `samples` uniform repairs (one uniform fact per block,
/// independently — this is the uniform distribution over repairs).
pub fn sampled_satisfaction_ratio(db: &Instance, q: &Query, samples: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks: Vec<Vec<Fact>> = db
        .populated_relations()
        .collect::<Vec<_>>()
        .into_iter()
        .flat_map(|rel| db.blocks(rel).into_iter().map(|(_, facts)| facts))
        .collect();
    if samples == 0 {
        return 0.0;
    }
    let cq = CompiledQuery::new(q);
    let mut hits = 0usize;
    for _ in 0..samples {
        let mut r = Instance::new(db.schema().clone());
        for facts in &blocks {
            let pick = &facts[rng.gen_range(0..facts.len())];
            r.insert(pick.clone()).expect("db fact");
        }
        if cq.satisfies(&r) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    fn fixture() -> (Instance, Query) {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        // R block {b, c}; S has a block for b only: exactly half the repairs
        // satisfy q (those choosing R(a,b)).
        let db = parse_instance(&s, "R(a,b) R(a,c) S(b,1)").unwrap();
        (db, q)
    }

    #[test]
    fn exact_count() {
        let (db, q) = fixture();
        assert_eq!(crate::pk_repairs::count_pk_repairs(&db), 2);
        assert_eq!(count_satisfying_pk_repairs(&db, &q), 1);
        assert!((exact_satisfaction_ratio(&db, &q) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn certain_iff_ratio_one() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let db = parse_instance(&s, "R(a,b) R(a,c) S(b,1) S(c,2)").unwrap();
        assert!((exact_satisfaction_ratio(&db, &q) - 1.0).abs() < 1e-9);
        assert!(crate::pk_certain(&db, &q));
    }

    #[test]
    fn sampling_converges_to_exact() {
        let (db, q) = fixture();
        let estimate = sampled_satisfaction_ratio(&db, &q, 4000, 99);
        assert!(
            (estimate - 0.5).abs() < 0.05,
            "estimate {estimate} too far from 0.5"
        );
    }

    #[test]
    fn sampling_on_larger_instance() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let mut text = String::new();
        for i in 0..10 {
            text.push_str(&format!("R(k{i},b) R(k{i},c) "));
        }
        text.push_str("S(b,1)");
        let db = parse_instance(&s, &text).unwrap();
        // q needs SOME block to choose b: ratio = 1 - (1/2)^10.
        let expected = 1.0 - 0.5f64.powi(10);
        let exact = exact_satisfaction_ratio(&db, &q);
        assert!((exact - expected).abs() < 1e-9);
        let estimate = sampled_satisfaction_ratio(&db, &q, 2000, 7);
        assert!((estimate - expected).abs() < 0.05);
    }

    #[test]
    fn empty_database() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let db = Instance::new(s);
        assert_eq!(count_satisfying_pk_repairs(&db, &q), 0);
        assert_eq!(sampled_satisfaction_ratio(&db, &q, 10, 1), 0.0);
    }
}
