//! # cqa-repair
//!
//! Symmetric-difference (⊕) repair semantics for primary keys and unary
//! foreign keys, exactly as defined in §3.3 of the reproduced paper:
//!
//! * the ⊕-closeness preorder `⪯_db` and **exact ⊕-repair verification**
//!   for finite candidate instances ([`delta`]);
//! * enumeration of primary-key repairs (one fact per block) and certainty by
//!   exhaustion for `FK = ∅` ([`mod@pk_repairs`]);
//! * the foreign-key **chase** with fresh constants, used both by the
//!   repair-search oracle and by the paper's Appendix-B constructions
//!   ([`chase`]);
//! * an exhaustive **certainty oracle** for small instances — the ground
//!   truth every classifier and rewriting in this workspace is tested
//!   against ([`oracle`]).
//!
//! The oracle is deliberately exponential: it realizes the generic
//! "enumerate repairs" baseline whose cost the paper's FO rewritings avoid,
//! and doubles as the baseline in the `fo_vs_naive` benchmark (DESIGN.md,
//! experiment E13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chase;
pub mod counting;
pub mod delta;
pub mod limits;
pub mod oracle;
pub mod pre_repair;
pub mod pk_repairs;

pub use chase::{chase_fresh, ChaseError};
pub use counting::{count_satisfying_pk_repairs, exact_satisfaction_ratio, sampled_satisfaction_ratio};
pub use delta::{closer_eq, delta_to, is_delta_repair, strictly_closer};
pub use limits::SearchLimits;
pub use oracle::{candidate_space, CertaintyOracle, OracleOutcome};
pub use pk_repairs::{count_pk_repairs, pk_certain, pk_repairs};
pub use pre_repair::{cap_closer, is_irrelevantly_dangling};
