//! The foreign-key chase (paper Appendix B).
//!
//! Repairing a dangling fact `T(a₁,…,aₘ)` with respect to `T[i] → U` inserts
//! a fact `U(aᵢ, b₂, …, b_m′)`. The paper's chase rule leaves the `bⱼ`
//! unconstrained; [`chase_fresh`] instantiates them with globally **fresh**
//! constants — the instantiation that is optimal for *falsifying* a query,
//! because a fresh constant can only be matched by a variable that occurs
//! nowhere else (cf. Lemma 24, where the invented values are orphan
//! constants).
//!
//! Cyclic dependency graphs (e.g. `R[2] → R`) can force unbounded insertion
//! chains; the chase is capped and reports [`ChaseError::InsertLimit`]
//! instead of diverging, which the oracle surfaces as `Inconclusive`.

use cqa_model::{Cst, Fact, FkSet, Instance};
use std::fmt;

/// Chase failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// The insertion cap was reached (cyclic foreign keys diverge).
    InsertLimit {
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::InsertLimit { cap } => {
                write!(f, "chase exceeded the insertion cap of {cap} facts")
            }
        }
    }
}

impl std::error::Error for ChaseError {}

/// Chases `base` to foreign-key consistency, inserting referenced facts with
/// fresh non-key values. Returns the chased instance together with the list
/// of inserted facts.
pub fn chase_fresh(
    base: &Instance,
    fks: &FkSet,
    max_inserts: usize,
) -> Result<(Instance, Vec<Fact>), ChaseError> {
    let mut db = base.clone();
    let mut inserted = Vec::new();
    // Worklist: facts whose outgoing keys still need checking.
    let mut work: Vec<Fact> = db.facts().collect();
    while let Some(fact) = work.pop() {
        for fk in fks.outgoing(fact.rel) {
            if db.is_dangling(&fact, &fk) {
                if inserted.len() >= max_inserts {
                    return Err(ChaseError::InsertLimit { cap: max_inserts });
                }
                let sig = db
                    .schema()
                    .signature(fk.to)
                    .expect("foreign keys validated against schema");
                let key = fact.arg_at(fk.pos).expect("position validated");
                let mut args = Vec::with_capacity(sig.arity);
                args.push(key);
                for _ in 1..sig.arity {
                    args.push(Cst::fresh("\u{22a5}")); // ⊥-prefixed fresh value
                }
                let new_fact = Fact::new(fk.to, args);
                db.insert(new_fact.clone()).expect("schema validated");
                inserted.push(new_fact.clone());
                work.push(new_fact);
            }
        }
    }
    Ok((db, inserted))
}

/// Bounded-chase entailment `q₁ ⊨_FK q₂` over instances: chases `base`
/// (typically a query viewed as a database by reading variables as fresh
/// constants) and tests `q₂`.
///
/// Returns `None` when the chase hits the cap (cyclic dependency graphs), in
/// which case the caller should fall back to the syntactic test (Theorem 7).
pub fn chase_entails(
    base: &Instance,
    fks: &FkSet,
    q: &cqa_model::Query,
    max_inserts: usize,
) -> Option<bool> {
    match chase_fresh(base, fks, max_inserts) {
        Ok((chased, _)) => Some(cqa_model::satisfies(&chased, q)),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn chase_repairs_dangling_chain() {
        // Example 4's shape: R[2]→S, S[2]→T over {R(a,b), S(b,c)}.
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
        let fks = parse_fks(&s, "R[2] -> S, S[2] -> T").unwrap();
        let db = parse_instance(&s, "R(a,b) S(b,c)").unwrap();
        let (chased, inserted) = chase_fresh(&db, &fks, 16).unwrap();
        assert!(chased.satisfies_fks(&fks));
        // Only T(c) is missing: exactly one insertion, with key c.
        assert_eq!(inserted.len(), 1);
        assert_eq!(inserted[0].rel, cqa_model::RelName::new("T"));
        assert_eq!(inserted[0].args[0], Cst::new("c"));
    }

    #[test]
    fn chase_cascades_through_fresh_values() {
        // R[2]→S where S has arity 2 and S[2]→T: the invented S-fact has a
        // fresh second component, which itself needs a T-fact.
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
        let fks = parse_fks(&s, "R[2] -> S, S[2] -> T").unwrap();
        let db = parse_instance(&s, "R(a,b)").unwrap();
        let (chased, inserted) = chase_fresh(&db, &fks, 16).unwrap();
        assert!(chased.satisfies_fks(&fks));
        assert_eq!(inserted.len(), 2); // S(b, ⊥₁) then T(⊥₁)
        let s_fact = inserted
            .iter()
            .find(|f| f.rel == cqa_model::RelName::new("S"))
            .unwrap();
        assert!(s_fact.args[1].is_fresh());
    }

    #[test]
    fn cyclic_chase_hits_cap() {
        // R[2] → R diverges with always-fresh values.
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let fks = parse_fks(&s, "R[2] -> R").unwrap();
        let db = parse_instance(&s, "R(a,b)").unwrap();
        assert!(matches!(
            chase_fresh(&db, &fks, 8),
            Err(ChaseError::InsertLimit { cap: 8 })
        ));
    }

    #[test]
    fn consistent_input_unchanged() {
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let fks = parse_fks(&s, "R[2] -> S").unwrap();
        let db = parse_instance(&s, "R(a,b) S(b)").unwrap();
        let (chased, inserted) = chase_fresh(&db, &fks, 16).unwrap();
        assert!(inserted.is_empty());
        assert_eq!(chased, db);
    }

    #[test]
    fn entailment_via_chase() {
        // Paper §3.2: with FK = {R[1] → S} (weak) over unary R, S:
        // {R(x)} ≡_FK {R(x), S(x)}.
        let s = Arc::new(parse_schema("R[1,1] S[1,1]").unwrap());
        let fks = parse_fks(&s, "R[1] -> S").unwrap();
        // View q′ = {R(x)} as the database {R(cx)}.
        let base = parse_instance(&s, "R(cx)").unwrap();
        let q = parse_query(&s, "R(x), S(x)").unwrap();
        assert_eq!(chase_entails(&base, &fks, &q, 8), Some(true));

        // Without the FK, entailment fails.
        let no_fk = cqa_model::FkSet::empty(s.clone());
        assert_eq!(chase_entails(&base, &no_fk, &q, 8), Some(false));
    }

    #[test]
    fn fresh_values_do_not_satisfy_selective_atoms() {
        // Chase {N(a, b)} with N[2] → O where O has arity 2: the invented
        // O-fact is O(b, ⊥). A query with O(y, 'c') must NOT be entailed.
        let s = Arc::new(parse_schema("N[2,1] O[2,1]").unwrap());
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        let base = parse_instance(&s, "N(a,b)").unwrap();
        let q_const = parse_query(&s, "N(x,y), O(y,'c')").unwrap();
        assert_eq!(chase_entails(&base, &fks, &q_const, 8), Some(false));
        let q_var = parse_query(&s, "N(x,y), O(y,w)").unwrap();
        assert_eq!(chase_entails(&base, &fks, &q_var, 8), Some(true));
    }
}
