//! Serve-level integration: concurrent clients against one cached plan,
//! and the full socket lifecycle (bind → requests → shutdown → metrics
//! dump) over a Unix-domain socket.

use cqa_core::ExecOptions;
use cqa_serve::{request, serve, Endpoint, ServeConfig, Service};
use serde_json::Value;
use std::path::PathBuf;
use std::sync::Arc;

fn solve_line(db: &str) -> String {
    format!(
        r#"{{"op":"solve","schema":"N[2,1] O[1,1] P[1,1]","query":"N('c',y), O(y), P(y)","fks":"N[2] -> O","db":"{db}"}}"#
    )
}

/// Instances with known verdicts through the Proposition-style FO plan.
const CASES: &[(&str, &str)] = &[
    ("N(c,a) O(a) P(a)", "certain"),
    ("N(c,a) N(c,b) O(a) P(a)", "not certain"),
    ("N(c,a) N(c,b) O(a) O(b) P(a) P(b)", "certain"),
    ("N(c,a) O(b) P(a)", "not certain"),
];

#[test]
fn n_concurrent_clients_one_cached_plan_exactly_one_miss() {
    let service = Arc::new(Service::new(ServeConfig {
        defaults: ExecOptions::sequential(),
        cache_capacity: 8,
        max_facts: None,
    }));
    let n_threads = 8;
    let rounds = 6;
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for r in 0..rounds {
                    // Interleave the cases differently per thread so the
                    // shared plan sees a mixed, racing request stream.
                    let (db, want) = CASES[(t + r) % CASES.len()];
                    let reply: Value =
                        serde_json::from_str(&service.handle_line(&solve_line(db)))
                            .expect("reply parses");
                    assert_eq!(
                        reply.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "{reply:?}"
                    );
                    assert_eq!(
                        reply.get("certainty").and_then(Value::as_str),
                        Some(want),
                        "thread {t} round {r} on {db}"
                    );
                }
            });
        }
    });
    // Every concurrent request shared ONE compiled plan: the build ran
    // exactly once, everything else hit.
    assert_eq!(service.metrics().misses(), 1, "exactly one cache miss");
    assert_eq!(
        service.metrics().hits(),
        (n_threads * rounds - 1) as u64,
        "every other request hits"
    );
    assert_eq!(service.cache().len(), 1);
}

fn temp_socket(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("cqa-serve-test-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn unix_socket_lifecycle_with_shutdown_and_metrics_dump() {
    let socket = temp_socket("lifecycle");
    let metrics_path = socket.with_extension("metrics.json");
    let _ = std::fs::remove_file(&metrics_path);
    let endpoint = Endpoint::Unix(socket.clone());

    let service = Arc::new(Service::new(ServeConfig {
        defaults: ExecOptions::sequential(),
        cache_capacity: 8,
        max_facts: None,
    }));
    let server = {
        let service = Arc::clone(&service);
        let endpoint = endpoint.clone();
        let metrics_path = metrics_path.clone();
        std::thread::spawn(move || serve(&service, &endpoint, Some(&metrics_path)))
    };

    // The bind is asynchronous with this test thread: poll until the
    // socket file exists and answers a ping.
    let mut pong = None;
    for _ in 0..200 {
        if socket.exists() {
            if let Ok(reply) = request(&endpoint, r#"{"op":"ping"}"#) {
                pong = Some(reply);
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let pong = pong.expect("server came up");
    assert!(pong.contains(r#""pong":true"#), "{pong}");

    // A mixed request stream: every verdict correct, repeats all hit.
    for (db, want) in CASES.iter().cycle().take(10) {
        let reply: Value =
            serde_json::from_str(&request(&endpoint, &solve_line(db)).expect("round trip"))
                .expect("reply parses");
        assert_eq!(reply.get("certainty").and_then(Value::as_str), Some(*want));
    }
    let metrics: Value =
        serde_json::from_str(&request(&endpoint, r#"{"op":"metrics"}"#).unwrap()).unwrap();
    let cache = metrics.get("metrics").and_then(|m| m.get("cache")).unwrap();
    assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
    assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(9));

    // Clean shutdown: reply arrives, the accept loop drains and exits,
    // the socket file is gone, the metrics dump is on disk.
    let bye = request(&endpoint, r#"{"op":"shutdown"}"#).unwrap();
    assert!(bye.contains(r#""shutdown":true"#), "{bye}");
    server
        .join()
        .expect("server thread exits")
        .expect("serve returns Ok");
    assert!(!socket.exists(), "socket file removed on shutdown");
    let dumped: Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).expect("metrics dumped"))
            .expect("metrics dump is valid JSON");
    assert_eq!(
        dumped
            .get("requests")
            .and_then(|r| r.get("solve"))
            .and_then(Value::as_u64),
        Some(10)
    );
    let _ = std::fs::remove_file(&metrics_path);
}
