//! The serve-mode metrics registry: request and route distribution
//! counters, cache hit/miss accounting, and per-backend latency
//! percentiles — exposed live via the `metrics` request and dumped as JSON
//! on shutdown.

use parking_lot::Mutex;
use serde_json::Value;
use std::collections::BTreeMap;
use std::time::Duration;

/// Latency samples kept per backend; older samples are overwritten
/// ring-buffer style so a long-lived server's percentiles track recent
/// behavior at bounded memory.
const SAMPLE_CAP: usize = 4096;

#[derive(Default)]
struct Latency {
    /// Microsecond samples, ring-buffered.
    samples: Vec<u64>,
    /// Next write slot once `samples` is full.
    cursor: usize,
    total: u64,
}

impl Latency {
    fn record(&mut self, micros: u64) {
        self.total += 1;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(micros);
        } else {
            self.samples[self.cursor] = micros;
            self.cursor = (self.cursor + 1) % SAMPLE_CAP;
        }
    }

    fn percentile(sorted: &[u64], p: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

#[derive(Default)]
struct Counters {
    /// Requests seen, per protocol op (including malformed ones under
    /// `"invalid"`).
    requests: BTreeMap<String, u64>,
    /// Plan-cache hits and misses.
    hits: u64,
    misses: u64,
    /// Requests refused by admission control (over budget / too large).
    rejected: u64,
    /// Requests that errored (parse failures, unknown ops, …).
    errors: u64,
    /// Solve verdicts per backend label ("compiled plan", "dual-Horn", …).
    routes: BTreeMap<String, u64>,
    /// Latency samples per backend label.
    latency: BTreeMap<String, Latency>,
}

/// Shared, thread-safe registry of everything the server counts.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Counters>,
}

impl MetricsRegistry {
    /// A fresh registry with every counter at zero.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Counts one incoming request of the given op.
    pub fn record_request(&self, op: &str) {
        *self.inner.lock().requests.entry(op.to_string()).or_insert(0) += 1;
    }

    /// Counts a plan-cache hit (`true`) or miss (`false`).
    pub fn record_cache(&self, hit: bool) {
        let mut c = self.inner.lock();
        if hit {
            c.hits += 1;
        } else {
            c.misses += 1;
        }
    }

    /// Counts an admission-control rejection.
    pub fn record_rejection(&self) {
        self.inner.lock().rejected += 1;
    }

    /// Counts an errored request.
    pub fn record_error(&self) {
        self.inner.lock().errors += 1;
    }

    /// Records a completed solve: which backend answered and how long it
    /// took.
    pub fn record_solve(&self, backend: &str, elapsed: Duration) {
        let mut c = self.inner.lock();
        *c.routes.entry(backend.to_string()).or_insert(0) += 1;
        c.latency
            .entry(backend.to_string())
            .or_default()
            .record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.inner.lock().misses
    }

    /// The full registry as a JSON value — the `metrics` response body and
    /// the shutdown dump. Per-backend latency is summarized as
    /// `{count, p50_us, p99_us}` over the ring-buffered samples.
    pub fn snapshot(&self) -> Value {
        let c = self.inner.lock();
        let mut root = BTreeMap::new();
        root.insert(
            "requests".to_string(),
            Value::Object(
                c.requests
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Number(*v as f64)))
                    .collect(),
            ),
        );
        let mut cache = BTreeMap::new();
        cache.insert("hits".to_string(), Value::Number(c.hits as f64));
        cache.insert("misses".to_string(), Value::Number(c.misses as f64));
        root.insert("cache".to_string(), Value::Object(cache));
        root.insert("rejected".to_string(), Value::Number(c.rejected as f64));
        root.insert("errors".to_string(), Value::Number(c.errors as f64));
        root.insert(
            "routes".to_string(),
            Value::Object(
                c.routes
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Number(*v as f64)))
                    .collect(),
            ),
        );
        let mut backends = BTreeMap::new();
        for (name, lat) in &c.latency {
            let mut sorted = lat.samples.clone();
            sorted.sort_unstable();
            let mut entry = BTreeMap::new();
            entry.insert("count".to_string(), Value::Number(lat.total as f64));
            entry.insert(
                "p50_us".to_string(),
                Value::Number(Latency::percentile(&sorted, 0.50) as f64),
            );
            entry.insert(
                "p99_us".to_string(),
                Value::Number(Latency::percentile(&sorted, 0.99) as f64),
            );
            backends.insert(name.clone(), Value::Object(entry));
        }
        root.insert("latency".to_string(), Value::Object(backends));
        Value::Object(root)
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_counts_and_percentiles() {
        let m = MetricsRegistry::new();
        m.record_request("solve");
        m.record_request("solve");
        m.record_request("ping");
        m.record_cache(false);
        m.record_cache(true);
        m.record_cache(true);
        for us in [100u64, 200, 300, 400] {
            m.record_solve("compiled plan", Duration::from_micros(us));
        }
        m.record_rejection();
        let snap = m.snapshot();
        assert_eq!(
            snap.get("requests").and_then(|r| r.get("solve")).and_then(Value::as_u64),
            Some(2)
        );
        let cache = snap.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(2));
        assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
        assert_eq!(snap.get("rejected").and_then(Value::as_u64), Some(1));
        let lat = snap
            .get("latency")
            .and_then(|l| l.get("compiled plan"))
            .unwrap();
        assert_eq!(lat.get("count").and_then(Value::as_u64), Some(4));
        let p50 = lat.get("p50_us").and_then(Value::as_u64).unwrap();
        let p99 = lat.get("p99_us").and_then(Value::as_u64).unwrap();
        assert!((100..=400).contains(&p50));
        assert!(p99 >= p50);
    }

    #[test]
    fn latency_ring_buffer_is_bounded() {
        let mut lat = Latency::default();
        for i in 0..(SAMPLE_CAP as u64 + 100) {
            lat.record(i);
        }
        assert_eq!(lat.samples.len(), SAMPLE_CAP);
        assert_eq!(lat.total, SAMPLE_CAP as u64 + 100);
        // The oldest samples (0..100) were overwritten by the newest.
        assert!(lat.samples.contains(&(SAMPLE_CAP as u64 + 99)));
        assert!(!lat.samples.contains(&0));
    }
}
