//! # cqa-serve — the persistent solver service
//!
//! The dichotomy's economics (Hannula & Wijsen, PODS 2022) make
//! classification plus plan compilation the expensive, once-per-`(q, FK)`
//! step and per-instance answering cheap. This crate turns that shape
//! into a long-lived server: `cqa serve` speaks a line-delimited JSON
//! protocol over a Unix-domain or TCP socket, and every request for an
//! already-seen problem is answered through one shared, cached
//! [`Solver`](cqa_core::Solver) — classification and compilation
//! amortized across the whole request stream.
//!
//! Three pieces, one per module:
//!
//! * [`cache`] — the bounded LRU [`PlanCache`], keyed by canonicalized
//!   `(schema, query, fks, evaluator, join)`, holding `Arc<Solver>`s
//!   (`Solver: Send + Sync`, pinned by a compile-time assertion in
//!   `cqa-core`) so concurrent connections share one compiled route;
//! * [`service`] — the transport-free request handler: per-request
//!   [`ExecOptions`](cqa_core::ExecOptions) resolution (the environment
//!   is consulted only at startup, never per request) and admission
//!   control that *rejects* over-budget work instead of queueing it;
//! * [`net`] — the sockets: a nonblocking accept loop with scoped worker
//!   threads bounded by the `rayon_lite` width, clean shutdown with a
//!   metrics dump, and the one-shot [`request`] client behind
//!   `cqa request`.
//!
//! ```
//! use cqa_serve::{ServeConfig, Service};
//!
//! let service = Service::new(ServeConfig::default());
//! let reply = service.handle_line(
//!     r#"{"op":"solve","schema":"N[2,1] O[1,1] P[1,1]",
//!         "query":"N('c',y), O(y), P(y)","fks":"N[2] -> O",
//!         "db":"N(c,a) O(a) P(a)"}"#
//!         .replace('\n', " ")
//!         .as_str(),
//! );
//! assert!(reply.contains(r#""certainty":"certain""#), "{reply}");
//! assert!(reply.contains(r#""cache":"miss""#));
//! // Same problem again: served from the shared compiled plan.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod net;
pub mod service;

pub use cache::{CachedPlan, Lookup, PlanCache, RawKey};
pub use metrics::MetricsRegistry;
pub use net::{request, serve, Endpoint};
pub use service::{ServeConfig, Service};
