//! The request handler: one line of JSON in, one line of JSON out.
//!
//! ## Protocol
//!
//! Requests are single-line JSON objects with an `"op"` field:
//!
//! | op | fields | reply |
//! |----|--------|-------|
//! | `ping` | — | `{"ok":true,"pong":true}` |
//! | `solve` | `schema`, `query`, `db` (required); `fks`, `evaluator`, `materialized`, `threads`, `budget` (optional) | verdict + provenance (below) |
//! | `emit` | `schema`, `query`, `db` (required); `fks`, `format` (`"datalog"` \| `"sql"`, default `"datalog"`) (optional) | `{"ok":true,"format":…,"route":…,"goal":…,"artifact":…}` — the self-contained artifact text (see `cqa-emit`); reuses the same plan cache as `solve` |
//! | `metrics` | — | `{"ok":true,"metrics":{…}}` (see [`crate::MetricsRegistry::snapshot`]) |
//! | `shutdown` | — | `{"ok":true,"shutdown":true}`; the accept loop then drains and exits |
//!
//! A `solve` reply carries the three-valued verdict and enough provenance
//! for clients (and the regression tests) to see exactly which compiled
//! route answered:
//!
//! ```json
//! {"ok":true,"certainty":"certain","backend":"compiled plan",
//!  "cache":"hit","evaluator":"compiled","join":"semijoin",
//!  "elapsed_us":42}
//! ```
//!
//! Errors are `{"ok":false,"error":"…"}`; admission-control refusals add
//! `"rejected":true` so clients can distinguish "resize your request"
//! from "your request is malformed".
//!
//! ## Per-request options
//!
//! Each request resolves its own [`ExecOptions`] from the server defaults
//! plus its optional fields — after startup the serve loop never consults
//! the process environment again. The **compiled** choices (`evaluator`,
//! `materialized`) are part of the plan-cache key, so a client pinning an
//! evaluator can never be handed a plan compiled for a different one; the
//! **runtime** choices (`threads`, `budget`) are passed to
//! [`cqa_core::Solver::solve_with`] per call on the shared cached solver.
//!
//! ## Admission control
//!
//! Over-budget work is refused up front instead of queued: a `solve`
//! whose database exceeds the configured fact ceiling, or whose
//! hard-class candidate space exceeds the request's oracle budget, gets
//! an immediate `rejected` reply — the server's latency profile is
//! protected by never starting work it already knows it cannot finish.

use crate::cache::{Lookup, PlanCache, RawKey};
use crate::metrics::MetricsRegistry;
use cqa_core::solver::{Evaluator, ExecOptions, FallbackBudget, Route};
use cqa_core::Certainty;
use cqa_emit::{Format, SolverEmitExt};
use cqa_model::parser::parse_instance;
use cqa_model::JoinStrategy;
use cqa_repair::{CertaintyOracle, SearchLimits};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Server-level configuration, fixed at startup.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Default execution options; per-request fields override them.
    pub defaults: ExecOptions,
    /// Maximum number of compiled plans kept in the LRU cache.
    pub cache_capacity: usize,
    /// Admission control: refuse databases with more facts than this.
    pub max_facts: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            defaults: ExecOptions::default(),
            cache_capacity: 64,
            max_facts: None,
        }
    }
}

/// The long-lived service state shared by every connection: plan cache,
/// metrics, config, shutdown flag.
#[derive(Debug)]
pub struct Service {
    config: ServeConfig,
    cache: PlanCache,
    metrics: MetricsRegistry,
    shutdown: AtomicBool,
}

impl Service {
    /// A fresh service with an empty cache and zeroed metrics.
    pub fn new(config: ServeConfig) -> Service {
        Service {
            cache: PlanCache::new(config.cache_capacity),
            metrics: MetricsRegistry::new(),
            shutdown: AtomicBool::new(false),
            config,
        }
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handles one protocol line, returning the reply line (without the
    /// trailing newline). Never panics on malformed input — every failure
    /// is an `{"ok":false,…}` reply.
    pub fn handle_line(&self, line: &str) -> String {
        let request = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                self.metrics.record_request("invalid");
                self.metrics.record_error();
                return error_reply(&format!("invalid request: {e}"), false);
            }
        };
        let op = request.get("op").and_then(Value::as_str).unwrap_or("");
        match op {
            "ping" => {
                self.metrics.record_request("ping");
                ok_reply([("pong", Value::Bool(true))])
            }
            "metrics" => {
                self.metrics.record_request("metrics");
                ok_reply([("metrics", self.metrics.snapshot())])
            }
            "shutdown" => {
                self.metrics.record_request("shutdown");
                self.shutdown.store(true, Ordering::SeqCst);
                ok_reply([("shutdown", Value::Bool(true))])
            }
            "solve" => {
                self.metrics.record_request("solve");
                match self.handle_solve(&request) {
                    Ok(reply) => reply,
                    Err(SolveRefusal::Error(msg)) => {
                        self.metrics.record_error();
                        error_reply(&msg, false)
                    }
                    Err(SolveRefusal::Rejected(msg)) => {
                        self.metrics.record_rejection();
                        error_reply(&msg, true)
                    }
                }
            }
            "emit" => {
                self.metrics.record_request("emit");
                match self.handle_emit(&request) {
                    Ok(reply) => reply,
                    Err(SolveRefusal::Error(msg)) => {
                        self.metrics.record_error();
                        error_reply(&msg, false)
                    }
                    Err(SolveRefusal::Rejected(msg)) => {
                        self.metrics.record_rejection();
                        error_reply(&msg, true)
                    }
                }
            }
            other => {
                self.metrics.record_request("invalid");
                self.metrics.record_error();
                error_reply(
                    &format!(
                        "unknown op {other:?} (expected ping, solve, emit, metrics or shutdown)"
                    ),
                    false,
                )
            }
        }
    }

    fn handle_solve(&self, request: &Value) -> Result<String, SolveRefusal> {
        let field = |name: &str| -> Result<String, SolveRefusal> {
            request
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| SolveRefusal::Error(format!("missing string field {name:?}")))
        };
        let schema_text = field("schema")?;
        let query_text = field("query")?;
        let db_text = field("db")?;
        let fks_text = request
            .get("fks")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();

        // Per-request execution options over the server defaults. The
        // environment is NOT consulted here: `defaults` was resolved once
        // at startup, and everything else comes from the request.
        let mut options = self.config.defaults;
        let mut join = options.join;
        if let Some(ev) = request.get("evaluator") {
            let text = ev
                .as_str()
                .ok_or_else(|| SolveRefusal::Error("evaluator must be a string".to_string()))?;
            join = text
                .parse::<JoinStrategy>()
                .map_err(SolveRefusal::Error)?;
            options = options.with_join(join);
        }
        if let Some(m) = request.get("materialized") {
            let m = m
                .as_bool()
                .ok_or_else(|| SolveRefusal::Error("materialized must be a boolean".to_string()))?;
            if m {
                options.evaluator = Evaluator::Materialized;
            }
        }
        if let Some(t) = request.get("threads") {
            let t = t
                .as_u64()
                .filter(|t| *t >= 1)
                .ok_or_else(|| SolveRefusal::Error("threads must be a positive integer".to_string()))?;
            options = options.with_threads(t as usize);
        }
        if let Some(b) = request.get("budget") {
            let b = b
                .as_u64()
                .ok_or_else(|| SolveRefusal::Error("budget must be a non-negative integer".to_string()))?;
            options = options.with_fallback(SearchLimits::budgeted(b));
        }

        let raw_key = RawKey {
            schema: schema_text,
            query: query_text,
            fks: fks_text,
            evaluator: options.evaluator,
            join,
        };
        let (plan, lookup) = self
            .cache
            .get_or_build(&raw_key, &self.config.defaults)
            .map_err(SolveRefusal::Error)?;
        self.metrics.record_cache(lookup == Lookup::Hit);

        let db = parse_instance(&plan.schema, &db_text)
            .map_err(|e| SolveRefusal::Error(format!("db: {e}")))?;

        // Admission control: refuse work we already know we cannot (or
        // should not) finish, instead of queueing it.
        if let Some(cap) = self.config.max_facts {
            if db.len() > cap {
                return Err(SolveRefusal::Rejected(format!(
                    "database has {} facts, over the admission ceiling of {cap}",
                    db.len()
                )));
            }
        }
        if let Route::Fallback(_) = plan.solver.route() {
            let limits = match options.fallback {
                FallbackBudget::Allow(limits) => limits,
                FallbackBudget::Deny => {
                    return Err(SolveRefusal::Rejected(
                        "hard-class problem and the request allows no fallback budget \
                         (send a \"budget\" field)"
                            .to_string(),
                    ))
                }
            };
            let oracle = CertaintyOracle::with_limits(limits);
            if !oracle.within_budget(&db, plan.solver.problem().fks()) {
                return Err(SolveRefusal::Rejected(format!(
                    "hard-class candidate space exceeds the request budget \
                     ({} facts; raise \"budget\")",
                    db.len()
                )));
            }
        }

        let verdict = plan.solver.solve_with(&db, &options);
        let backend = verdict.provenance.backend.to_string();
        self.metrics.record_solve(&backend, verdict.provenance.elapsed);

        let mut reply: Vec<(&str, Value)> = vec![
            (
                "certainty",
                Value::String(verdict.certainty.to_string()),
            ),
            ("backend", Value::String(backend)),
            ("cache", Value::String(lookup.label().to_string())),
            (
                "evaluator",
                Value::String(
                    match plan.solver.options().evaluator {
                        Evaluator::Compiled => "compiled",
                        Evaluator::Materialized => "materialized",
                    }
                    .to_string(),
                ),
            ),
            (
                "join",
                Value::String(plan.solver.options().join.to_string()),
            ),
            (
                "elapsed_us",
                Value::Number(verdict.provenance.elapsed.as_micros() as f64),
            ),
        ];
        if verdict.certainty == Certainty::Inconclusive {
            if let Some(detail) = &verdict.provenance.detail {
                reply.push(("detail", Value::String(detail.clone())));
            }
        }
        Ok(ok_reply(reply))
    }
}

impl Service {
    /// `emit`: compile the (cached) plan over the request database into a
    /// self-contained Datalog/SQL artifact. Shares `solve`'s plan cache —
    /// an emit after a solve of the same problem is a cache hit — and its
    /// fact-ceiling admission control (the artifact embeds every fact).
    fn handle_emit(&self, request: &Value) -> Result<String, SolveRefusal> {
        let field = |name: &str| -> Result<String, SolveRefusal> {
            request
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| SolveRefusal::Error(format!("missing string field {name:?}")))
        };
        let schema_text = field("schema")?;
        let query_text = field("query")?;
        let db_text = field("db")?;
        let fks_text = request
            .get("fks")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let format = match request.get("format") {
            None => Format::Datalog,
            Some(f) => f
                .as_str()
                .ok_or_else(|| SolveRefusal::Error("format must be a string".to_string()))?
                .parse::<Format>()
                .map_err(SolveRefusal::Error)?,
        };

        // Emission ignores the runtime evaluator knobs, but the cache key
        // carries the server defaults so emit and solve requests for the
        // same problem share one entry.
        let raw_key = RawKey {
            schema: schema_text,
            query: query_text,
            fks: fks_text,
            evaluator: self.config.defaults.evaluator,
            join: self.config.defaults.join,
        };
        let (plan, lookup) = self
            .cache
            .get_or_build(&raw_key, &self.config.defaults)
            .map_err(SolveRefusal::Error)?;
        self.metrics.record_cache(lookup == Lookup::Hit);

        let db = parse_instance(&plan.schema, &db_text)
            .map_err(|e| SolveRefusal::Error(format!("db: {e}")))?;
        if let Some(cap) = self.config.max_facts {
            if db.len() > cap {
                return Err(SolveRefusal::Rejected(format!(
                    "database has {} facts, over the admission ceiling of {cap}",
                    db.len()
                )));
            }
        }

        let artifact = plan
            .solver
            .emit(&db, format)
            .map_err(|e| SolveRefusal::Error(format!("emit: {e}")))?;
        Ok(ok_reply([
            ("format", Value::String(artifact.format.to_string())),
            ("route", Value::String(artifact.route.to_string())),
            ("goal", Value::String(artifact.goal)),
            ("cache", Value::String(lookup.label().to_string())),
            ("artifact", Value::String(artifact.text)),
        ]))
    }
}

/// Why a `solve` did not produce a verdict: a malformed/unanswerable
/// request vs. an admission-control refusal.
enum SolveRefusal {
    Error(String),
    Rejected(String),
}

fn ok_reply<'a>(fields: impl IntoIterator<Item = (&'a str, Value)>) -> String {
    let mut map = BTreeMap::new();
    map.insert("ok".to_string(), Value::Bool(true));
    for (k, v) in fields {
        map.insert(k.to_string(), v);
    }
    serde_json::to_string(&Value::Object(map)).expect("object serialization is infallible")
}

fn error_reply(msg: &str, rejected: bool) -> String {
    let mut map = BTreeMap::new();
    map.insert("ok".to_string(), Value::Bool(false));
    map.insert("error".to_string(), Value::String(msg.to_string()));
    if rejected {
        map.insert("rejected".to_string(), Value::Bool(true));
    }
    serde_json::to_string(&Value::Object(map)).expect("object serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> Service {
        Service::new(ServeConfig {
            defaults: ExecOptions::sequential(),
            cache_capacity: 8,
            max_facts: None,
        })
    }

    fn solve_line(db: &str, extra: &str) -> String {
        format!(
            r#"{{"op":"solve","schema":"N[2,1] O[1,1] P[1,1]","query":"N('c',y), O(y), P(y)","fks":"N[2] -> O","db":"{db}"{extra}}}"#
        )
    }

    #[test]
    fn ping_metrics_and_unknown_ops() {
        let s = service();
        let pong = serde_json::from_str(&s.handle_line(r#"{"op":"ping"}"#)).unwrap();
        assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));
        let bad = serde_json::from_str(&s.handle_line(r#"{"op":"frobnicate"}"#)).unwrap();
        assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
        let metrics = serde_json::from_str(&s.handle_line(r#"{"op":"metrics"}"#)).unwrap();
        let m = metrics.get("metrics").unwrap();
        assert_eq!(
            m.get("requests").and_then(|r| r.get("ping")).and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(m.get("errors").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn solve_round_trip_hits_the_cache_on_repeat() {
        let s = service();
        let line = solve_line("N(c,a) O(a) P(a)", "");
        let first = serde_json::from_str(&s.handle_line(&line)).unwrap();
        assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true), "{first:?}");
        assert_eq!(first.get("certainty").and_then(Value::as_str), Some("certain"));
        assert_eq!(first.get("cache").and_then(Value::as_str), Some("miss"));
        let again = serde_json::from_str(&s.handle_line(&line)).unwrap();
        assert_eq!(again.get("cache").and_then(Value::as_str), Some("hit"));
        // A falsified instance through the same cached plan.
        let no = serde_json::from_str(&s.handle_line(&solve_line(
            "N(c,a) N(c,b) O(a) P(a)",
            "",
        )))
        .unwrap();
        assert_eq!(no.get("certainty").and_then(Value::as_str), Some("not certain"));
        assert_eq!(no.get("cache").and_then(Value::as_str), Some("hit"));
        assert_eq!(s.metrics().hits(), 2);
        assert_eq!(s.metrics().misses(), 1);
    }

    #[test]
    fn request_pinned_evaluator_is_honored_not_overridden() {
        // Satellite regression: the server's cached default must never
        // override a client's pinned evaluator. Server default is
        // backtracking; the request pins semijoin and must get a plan
        // compiled for semijoin.
        let s = Service::new(ServeConfig {
            defaults: ExecOptions::sequential().with_join(JoinStrategy::Backtracking),
            cache_capacity: 8,
            max_facts: None,
        });
        let default_reply =
            serde_json::from_str(&s.handle_line(&solve_line("N(c,a) O(a) P(a)", ""))).unwrap();
        assert_eq!(
            default_reply.get("join").and_then(Value::as_str),
            Some("backtracking")
        );
        let pinned = serde_json::from_str(&s.handle_line(&solve_line(
            "N(c,a) O(a) P(a)",
            r#","evaluator":"semijoin""#,
        )))
        .unwrap();
        assert_eq!(pinned.get("ok").and_then(Value::as_bool), Some(true), "{pinned:?}");
        assert_eq!(pinned.get("join").and_then(Value::as_str), Some("semijoin"));
        // Different compiled choice ⇒ different cache entry, same verdict.
        assert_eq!(pinned.get("cache").and_then(Value::as_str), Some("miss"));
        assert_eq!(pinned.get("certainty").and_then(Value::as_str), Some("certain"));
        // And a materialized request gets the interpretive evaluator.
        let mat = serde_json::from_str(&s.handle_line(&solve_line(
            "N(c,a) O(a) P(a)",
            r#","materialized":true"#,
        )))
        .unwrap();
        assert_eq!(mat.get("evaluator").and_then(Value::as_str), Some("materialized"));
        assert_eq!(mat.get("backend").and_then(Value::as_str), Some("materialized plan"));
    }

    #[test]
    fn admission_control_rejects_oversized_databases() {
        let s = Service::new(ServeConfig {
            defaults: ExecOptions::sequential(),
            cache_capacity: 8,
            max_facts: Some(2),
        });
        let reply = serde_json::from_str(&s.handle_line(&solve_line(
            "N(c,a) O(a) P(a)",
            "",
        )))
        .unwrap();
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(reply.get("rejected").and_then(Value::as_bool), Some(true));
        assert!(reply
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("admission ceiling"));
        let m = s.metrics().snapshot();
        assert_eq!(m.get("rejected").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn hard_class_requires_a_request_budget() {
        // Example 13's q2 — block-interfering and not a poly-time shape,
        // so it routes to the budgeted fallback (same fixture as the
        // solver routing tests).
        let line = |extra: &str| {
            format!(
                r#"{{"op":"solve","schema":"N[3,1] O[2,1]","query":"N(x,'c',y), O(y,w)","fks":"N[3] -> O","db":"N(a,c,1) O(1,w)"{extra}}}"#
            )
        };
        let s = service();
        let refused = serde_json::from_str(&s.handle_line(&line(""))).unwrap();
        if refused.get("rejected").and_then(Value::as_bool) == Some(true) {
            // Hard class without a budget: admission control refuses.
            let with_budget =
                serde_json::from_str(&s.handle_line(&line(r#","budget":100000"#))).unwrap();
            assert_eq!(
                with_budget.get("ok").and_then(Value::as_bool),
                Some(true),
                "{with_budget:?}"
            );
            assert_eq!(
                with_budget.get("backend").and_then(Value::as_str),
                Some("budgeted oracle")
            );
        } else {
            // If the shape routes elsewhere the test premise is wrong —
            // fail loudly rather than vacuously passing.
            panic!("expected a hard-class rejection, got {refused:?}");
        }
    }

    #[test]
    fn emit_shares_the_solve_plan_cache() {
        let s = service();
        let solve = serde_json::from_str(&s.handle_line(&solve_line("N(c,a) O(a) P(a)", "")))
            .unwrap();
        assert_eq!(solve.get("cache").and_then(Value::as_str), Some("miss"));
        // Same problem, emit op: must hit the plan cached by solve.
        let line = r#"{"op":"emit","schema":"N[2,1] O[1,1] P[1,1]","query":"N('c',y), O(y), P(y)","fks":"N[2] -> O","db":"N(c,a) O(a) P(a)"}"#;
        let emit = serde_json::from_str(&s.handle_line(line)).unwrap();
        assert_eq!(emit.get("ok").and_then(Value::as_bool), Some(true), "{emit:?}");
        assert_eq!(emit.get("cache").and_then(Value::as_str), Some("hit"));
        assert_eq!(emit.get("format").and_then(Value::as_str), Some("datalog"));
        assert_eq!(emit.get("route").and_then(Value::as_str), Some("fo"));
        assert_eq!(emit.get("goal").and_then(Value::as_str), Some("cqa_certain"));
        // The artifact is self-contained: re-parse and execute it, and the
        // goal must agree with the solve verdict above.
        let text = emit.get("artifact").and_then(Value::as_str).unwrap();
        let program = cqa_emit::datalog::Program::parse(text).unwrap();
        let ev = cqa_emit::evaluate(&program).unwrap();
        assert!(ev.holds("cqa_certain"));
        assert_eq!(solve.get("certainty").and_then(Value::as_str), Some("certain"));
    }

    #[test]
    fn emit_sql_and_bad_formats() {
        let s = service();
        let sql_line = r#"{"op":"emit","schema":"N[2,1] O[1,1] P[1,1]","query":"N('c',y), O(y), P(y)","fks":"N[2] -> O","db":"N(c,a) O(a) P(a)","format":"sql"}"#;
        let reply = serde_json::from_str(&s.handle_line(sql_line)).unwrap();
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true), "{reply:?}");
        assert_eq!(reply.get("format").and_then(Value::as_str), Some("sql"));
        assert_eq!(reply.get("goal").and_then(Value::as_str), Some("certain"));
        assert!(reply
            .get("artifact")
            .and_then(Value::as_str)
            .unwrap()
            .contains("AS certain"));
        let bad = r#"{"op":"emit","schema":"N[2,1] O[1,1] P[1,1]","query":"N('c',y), O(y), P(y)","fks":"N[2] -> O","db":"","format":"prolog"}"#;
        let reply = serde_json::from_str(&s.handle_line(bad)).unwrap();
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn shutdown_flag_is_observable() {
        let s = service();
        assert!(!s.shutdown_requested());
        let reply = serde_json::from_str(&s.handle_line(r#"{"op":"shutdown"}"#)).unwrap();
        assert_eq!(reply.get("shutdown").and_then(Value::as_bool), Some(true));
        assert!(s.shutdown_requested());
    }
}
