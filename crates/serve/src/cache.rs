//! The bounded LRU plan cache: the piece that turns the dichotomy's
//! classify-once economics into a service.
//!
//! Classification (Theorem 12) plus plan compilation is the expensive,
//! once-per-`(q, FK)` step; per-instance answering is cheap. The cache
//! holds one [`Arc<Solver>`] per **canonicalized** problem so every
//! request for the same problem — however its text is formatted — shares
//! one compiled route.
//!
//! Canonicalization parses the request's schema/query/fks text and renders
//! the parsed values back through their `Display` impls, which are
//! interner-backed and sorted — so `" N[3,1]  O[1,1] "` and `"O[1,1]
//! N[3,1]"` hit the same entry. The key also folds in the **compiled**
//! execution choices (evaluator, join strategy) because those are baked
//! into the route at [`Solver`] build time and cannot be honored
//! per-request on a shared solver (see `Solver::solve_with`): a client
//! pinning `--evaluator semijoin` gets a plan compiled for semijoin, never
//! a silently different cached one.
//!
//! A raw-text alias layer fronts the canonical map so that byte-identical
//! request texts (the overwhelmingly common case for a service fed by one
//! client template) skip re-parsing entirely — this is what makes repeated
//! cached requests an order of magnitude cheaper than per-request
//! `Solver::new`.

use cqa_core::solver::{Evaluator, ExecOptions, FallbackBudget, Solver};
use cqa_core::Problem;
use cqa_model::parser::{parse_fks, parse_query, parse_schema};
use cqa_model::{JoinStrategy, Schema};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A compiled, shareable plan: the solver plus the schema its instances
/// parse against.
#[derive(Debug)]
pub struct CachedPlan {
    /// The schema the cached problem was declared over — requests parse
    /// their database payloads against this.
    pub schema: Arc<Schema>,
    /// The shared solver (classification and plan compilation amortized).
    pub solver: Arc<Solver>,
}

/// The raw (pre-canonicalization) identity of a request's plan: exact
/// texts plus the compiled execution choices.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RawKey {
    /// Schema text exactly as received.
    pub schema: String,
    /// Query text exactly as received.
    pub query: String,
    /// FK text exactly as received.
    pub fks: String,
    /// Which FO evaluator the plan is compiled for.
    pub evaluator: Evaluator,
    /// Which join strategy the plan is compiled with.
    pub join: JoinStrategy,
}

impl RawKey {
    fn canonical(&self, schema: &Schema, problem: &Problem) -> String {
        format!(
            "{schema} | {problem} | {:?} | {}",
            self.evaluator, self.join
        )
    }
}

/// Outcome of a cache lookup, for the metrics registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Served from the cache (raw-text fast path or canonical map).
    Hit,
    /// Parsed, classified and compiled on this request.
    Miss,
}

impl Lookup {
    /// The wire label (`"hit"` / `"miss"`) used in responses.
    pub fn label(&self) -> &'static str {
        match self {
            Lookup::Hit => "hit",
            Lookup::Miss => "miss",
        }
    }
}

struct Entry {
    plan: Arc<CachedPlan>,
    /// Logical clock of the last touch, for LRU eviction.
    stamp: u64,
}

struct Inner {
    /// Canonical key → compiled plan.
    plans: HashMap<String, Entry>,
    /// Raw request identity → canonical key (the parse-skipping fast
    /// path).
    aliases: HashMap<RawKey, String>,
    clock: u64,
    evictions: u64,
}

/// Bounded LRU cache of compiled plans keyed by canonicalized
/// `(schema, query, fks, evaluator, join)`.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` compiled plans
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                plans: HashMap::new(),
                aliases: HashMap::new(),
                clock: 0,
                evictions: 0,
            }),
        }
    }

    /// Number of compiled plans currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// The plan for `key`, compiling it on a miss.
    ///
    /// The cache lock is held across parse + classify + compile, so under
    /// concurrent identical requests exactly one performs the build and
    /// every other request observes a hit — plan compilation is never
    /// duplicated, which both the amortization guarantee and the
    /// "exactly one miss" serve test rely on.
    ///
    /// `build_options` supplies the non-key execution defaults the solver
    /// is built with; its `evaluator`/`join` are overridden by the key's.
    /// Hard-class problems are always compiled with a fallback route (the
    /// default oracle limits if `build_options` denies fallback) — whether
    /// a given request may actually spend that budget is the admission
    /// controller's per-request decision, not a compile-time one.
    pub fn get_or_build(
        &self,
        key: &RawKey,
        build_options: &ExecOptions,
    ) -> Result<(Arc<CachedPlan>, Lookup), String> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;

        if let Some(canonical) = inner.aliases.get(key).cloned() {
            if let Some(entry) = inner.plans.get_mut(&canonical) {
                entry.stamp = now;
                return Ok((Arc::clone(&entry.plan), Lookup::Hit));
            }
            // The alias outlived its evicted plan; fall through to rebuild.
            inner.aliases.remove(key);
        }

        // Slow path: canonicalize by parsing.
        let schema = Arc::new(parse_schema(&key.schema).map_err(|e| format!("schema: {e}"))?);
        let query = parse_query(&schema, &key.query).map_err(|e| format!("query: {e}"))?;
        let fks = parse_fks(&schema, &key.fks).map_err(|e| format!("fks: {e}"))?;
        let problem = Problem::new(query, fks).map_err(|e| e.to_string())?;
        let canonical = key.canonical(&schema, &problem);

        if let Some(entry) = inner.plans.get_mut(&canonical) {
            entry.stamp = now;
            let plan = Arc::clone(&entry.plan);
            inner.aliases.insert(key.clone(), canonical);
            return Ok((plan, Lookup::Hit));
        }

        let mut options = *build_options;
        options.evaluator = key.evaluator;
        options = options.with_join(key.join);
        if options.fallback == FallbackBudget::Deny {
            options = options.allow_fallback();
        }
        let solver = Solver::builder(problem)
            .options(options)
            .build()
            .map_err(|e| e.to_string())?;
        let plan = Arc::new(CachedPlan {
            schema,
            solver: Arc::new(solver),
        });

        if inner.plans.len() >= self.capacity {
            evict_lru(&mut inner);
        }
        inner.plans.insert(
            canonical.clone(),
            Entry {
                plan: Arc::clone(&plan),
                stamp: now,
            },
        );
        inner.aliases.insert(key.clone(), canonical);
        Ok((plan, Lookup::Miss))
    }
}

/// Drops the least-recently-touched plan and every raw alias pointing at
/// it.
fn evict_lru(inner: &mut Inner) {
    let victim = inner
        .plans
        .iter()
        .min_by_key(|(_, e)| e.stamp)
        .map(|(k, _)| k.clone());
    if let Some(victim) = victim {
        inner.plans.remove(&victim);
        inner.aliases.retain(|_, canonical| *canonical != victim);
        inner.evictions += 1;
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(schema: &str, join: JoinStrategy) -> RawKey {
        RawKey {
            schema: schema.to_string(),
            query: "N('c',y), O(y), P(y)".to_string(),
            fks: "N[2] -> O".to_string(),
            evaluator: Evaluator::Compiled,
            join,
        }
    }

    #[test]
    fn textual_variants_share_one_compiled_plan() {
        let cache = PlanCache::new(8);
        let opts = ExecOptions::sequential();
        let (a, l1) = cache
            .get_or_build(&key("N[2,1] O[1,1] P[1,1]", JoinStrategy::Auto), &opts)
            .unwrap();
        // Different text, same canonical problem: relation order and
        // whitespace must not matter.
        let (b, l2) = cache
            .get_or_build(&key("P[1,1]  O[1,1] N[2,1]", JoinStrategy::Auto), &opts)
            .unwrap();
        assert_eq!(l1, Lookup::Miss);
        assert_eq!(l2, Lookup::Hit);
        assert!(Arc::ptr_eq(&a.solver, &b.solver));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn compiled_choices_are_part_of_the_key() {
        // A plan compiled for semijoin is NOT the plan compiled for
        // backtracking — sharing them would silently override a client's
        // pinned evaluator (the satellite-2 regression).
        let cache = PlanCache::new(8);
        let opts = ExecOptions::sequential();
        let (a, _) = cache
            .get_or_build(
                &key("N[2,1] O[1,1] P[1,1]", JoinStrategy::Backtracking),
                &opts,
            )
            .unwrap();
        let (b, l2) = cache
            .get_or_build(&key("N[2,1] O[1,1] P[1,1]", JoinStrategy::Semijoin), &opts)
            .unwrap();
        assert_eq!(l2, Lookup::Miss);
        assert!(!Arc::ptr_eq(&a.solver, &b.solver));
        assert_eq!(a.solver.options().join, JoinStrategy::Backtracking);
        assert_eq!(b.solver.options().join, JoinStrategy::Semijoin);
    }

    #[test]
    fn lru_evicts_the_coldest_plan_and_its_aliases() {
        let cache = PlanCache::new(2);
        let opts = ExecOptions::sequential();
        let k1 = key("N[2,1] O[1,1] P[1,1]", JoinStrategy::Auto);
        let k2 = key("N[2,1] O[1,1] P[1,1]", JoinStrategy::Semijoin);
        let k3 = key("N[2,1] O[1,1] P[1,1]", JoinStrategy::Backtracking);
        cache.get_or_build(&k1, &opts).unwrap();
        cache.get_or_build(&k2, &opts).unwrap();
        // Touch k1 so k2 is the LRU victim.
        cache.get_or_build(&k1, &opts).unwrap();
        cache.get_or_build(&k3, &opts).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // k1 survived; k2 was evicted and rebuilds as a miss.
        let (_, l1) = cache.get_or_build(&k1, &opts).unwrap();
        assert_eq!(l1, Lookup::Hit);
        let (_, l2) = cache.get_or_build(&k2, &opts).unwrap();
        assert_eq!(l2, Lookup::Miss);
    }

    #[test]
    fn parse_errors_surface_instead_of_caching() {
        let cache = PlanCache::new(2);
        let bad = RawKey {
            schema: "N[2,1".to_string(),
            query: "N(x,y)".to_string(),
            fks: String::new(),
            evaluator: Evaluator::Compiled,
            join: JoinStrategy::Auto,
        };
        assert!(cache.get_or_build(&bad, &ExecOptions::sequential()).is_err());
        assert!(cache.is_empty());
    }
}
