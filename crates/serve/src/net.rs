//! Socket transport for the serve protocol: Unix-domain and TCP
//! listeners, a nonblocking accept loop with a clean shutdown path, and
//! the one-shot client used by `cqa request`, the tests and CI.
//!
//! The accept loop hands each connection to a scoped worker thread,
//! bounded by the vendored `rayon_lite` width resolution (the same
//! `CQA_THREADS`-aware clamp the solver's fan-out uses); when every
//! worker slot is busy the connection is served inline on the accept
//! thread — natural backpressure, never an unbounded queue. After a
//! `shutdown` request the loop drains in-flight connections, then dumps
//! the metrics snapshot.

use crate::service::Service;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the server listens (and the client connects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7411`.
    Tcp(String),
}

impl Endpoint {
    /// Resolves the CLI's `--socket PATH` / `--tcp ADDR` pair (exactly one
    /// must be given).
    pub fn from_flags(socket: Option<&str>, tcp: Option<&str>) -> Result<Endpoint, String> {
        match (socket, tcp) {
            (Some(path), None) => Ok(Endpoint::Unix(PathBuf::from(path))),
            (None, Some(addr)) => Ok(Endpoint::Tcp(addr.to_string())),
            (Some(_), Some(_)) => Err("pass --socket or --tcp, not both".to_string()),
            (None, None) => Err("missing --socket PATH or --tcp ADDR".to_string()),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// One accepted connection, unified over both transports.
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                // A stale socket file from a dead server blocks bind;
                // nothing is listening on it, so remove it.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener))
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Conn::Unix(stream))
            }
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Conn::Tcp(stream))
            }
        }
    }
}

/// Runs the accept loop until a `shutdown` request lands, then drains
/// in-flight connections and (if `metrics_out` is given) writes the final
/// metrics snapshot there as pretty-printed JSON.
///
/// Worker width follows the `rayon_lite` resolution (`CQA_THREADS`-aware,
/// clamped to the machine); connections beyond that width are handled
/// inline on the accept thread rather than queued.
pub fn serve(
    service: &Arc<Service>,
    endpoint: &Endpoint,
    metrics_out: Option<&Path>,
) -> io::Result<()> {
    let listener = Listener::bind(endpoint)?;
    let width = rayon_lite::current_num_threads().max(1);
    let active = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        while !service.shutdown_requested() {
            match listener.accept() {
                Ok(conn) => {
                    if active.load(Ordering::SeqCst) < width {
                        active.fetch_add(1, Ordering::SeqCst);
                        let service = Arc::clone(service);
                        let active = &active;
                        scope.spawn(move || {
                            handle_connection(&service, conn);
                            active.fetch_sub(1, Ordering::SeqCst);
                        });
                    } else {
                        // All worker slots busy: serve inline. The accept
                        // loop pauses, which is the backpressure.
                        handle_connection(service, conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    eprintln!("accept error: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    });

    if let Endpoint::Unix(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
    if let Some(path) = metrics_out {
        let snapshot = service.metrics().snapshot();
        let body = serde_json::to_string_pretty(&snapshot).expect("metrics serialize");
        std::fs::write(path, body + "\n")?;
    }
    Ok(())
}

/// Serves one connection: line in, line out, until EOF or a broken pipe.
fn handle_connection(service: &Service, conn: Conn) {
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let reply = service.handle_line(trimmed);
                let conn = reader.get_mut();
                if conn.write_all(reply.as_bytes()).is_err()
                    || conn.write_all(b"\n").is_err()
                    || conn.flush().is_err()
                {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// One-shot client: connect, send `line`, read the single reply line.
/// This is the whole of `cqa request`.
pub fn request(endpoint: &Endpoint, line: &str) -> io::Result<String> {
    match endpoint {
        Endpoint::Unix(path) => round_trip(UnixStream::connect(path)?, line),
        Endpoint::Tcp(addr) => round_trip(TcpStream::connect(addr.as_str())?, line),
    }
}

fn round_trip<S: Read + Write>(mut stream: S, line: &str) -> io::Result<String> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    if reply.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection without replying",
        ));
    }
    Ok(reply.trim_end().to_string())
}
