//! The Appendix E reduction pipeline: constructing (and evaluating) the
//! consistent first-order rewriting of `CERTAINTY(q, FK)`.
//!
//! Lemma 18's proof composes first-order many-one reductions, each removing
//! at least one foreign key (paper Fig. 4):
//!
//! 1. drop trivial keys and close `FK` under implication (`FK := FK*`);
//! 2. **Lemma 36** — remove all weak keys referencing a relation
//!    (database reduction: identity);
//! 3. **Lemma 39** — remove strong `d →str d` keys (identity);
//! 4. **Lemma 37** — remove strong `o →str o` keys into leaf atoms, deleting
//!    the target atom (database reduction: delete source blocks irrelevant
//!    for `q^FK_R`, drop the target relation);
//! 5. alternately
//!    **Lemma 45** — if some atom has `key(F) = ∅`, branch on the facts of
//!    its (constant-keyed) block, binding the atom's variables per fact and
//!    recursing on an injectively renamed database; and
//!    **Lemma 40** — otherwise remove one `d →str o` key, deleting the
//!    target atom (database reduction: keep only source blocks with a fact
//!    that is non-dangling w.r.t. `FK[N→]`, drop the target relation);
//! 6. base case `FK = ∅`: the Koutris–Wijsen rewriting (`cqa-attack`).
//!
//! A [`RewritePlan`] is this composition as an explicit, inspectable value:
//! [`RewritePlan::answer`] applies each step's database transformation and
//! evaluates the final formula — a faithful executable rendering of the
//! paper's FO-membership proof. [`crate::flatten`] additionally folds a plan
//! into a single closed first-order sentence.

use crate::depgraph::fk_star;
use crate::fk_types::{fk_type, FkType};
use crate::interference::{block_interference, InterferenceWitness};
use crate::obedience::{nonkey_positions, qfk_atoms};
use crate::problem::Problem;
use cqa_attack::{kw_rewrite, AttackGraph};
use cqa_fo::eval::Strategy;
use cqa_fo::{CompiledFormula, Formula};
use cqa_model::eval::{block_is_relevant, unify, Valuation};
use cqa_model::{
    Atom, Cst, Fact, FkSet, ForeignKey, Instance, InstanceView, Query, RelName, RenameTable, Term,
    Var,
};
use std::collections::BTreeSet;
use std::fmt;

/// Why a plan could not be built (the problem is not in FO, or an internal
/// invariant was violated).
#[derive(Clone, Debug)]
pub enum BuildError {
    /// The attack graph of `q` is cyclic: L-hard (Theorem 12, case 2).
    CyclicAttackGraph,
    /// `(q, FK)` has block-interference: NL-hard (Theorem 12, case 3).
    BlockInterference(Vec<InterferenceWitness>),
    /// An internal pipeline invariant failed (a bug, not a user error).
    Internal(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::CyclicAttackGraph => write!(f, "cyclic attack graph (L-hard)"),
            BuildError::BlockInterference(ws) => {
                write!(f, "block-interference (NL-hard): ")?;
                for (i, w) in ws.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
            BuildError::Internal(msg) => write!(f, "internal pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// One reduction step, with the `(q, FK)` state after it.
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// What the step does.
    pub action: StepAction,
    /// The query after the step.
    pub query_after: Query,
    /// The foreign keys after the step.
    pub fks_after: FkSet,
}

/// The reduction actions of the pipeline.
#[derive(Clone, Debug)]
pub enum StepAction {
    /// Drop trivial keys `R[1] → R` (never falsifiable; identity reduction).
    DropTrivial {
        /// The removed keys.
        removed: Vec<ForeignKey>,
    },
    /// Close the set under implication: `FK := FK*` (identity reduction).
    CloseStar {
        /// The implied keys that were added.
        added: Vec<ForeignKey>,
    },
    /// Lemma 36: remove all weak keys referencing `target` (identity).
    DropWeak {
        /// The referenced relation.
        target: RelName,
        /// The removed weak keys.
        removed: Vec<ForeignKey>,
    },
    /// Lemma 39: remove a strong `d →str d` key (identity).
    RemoveDD {
        /// The removed key.
        fk: ForeignKey,
    },
    /// Lemma 37: remove a strong `o →str o` key `R[i] → S` and the `S`-atom.
    RemoveOO {
        /// The removed key.
        fk: ForeignKey,
        /// `q^FK_R` at removal time: blocks of `R` irrelevant for it are
        /// deleted by the database reduction.
        relevance_query: Query,
    },
    /// Lemma 40: remove a strong `d →str o` key `N[i] → O` and the `O`-atom.
    RemoveDO {
        /// The removed key.
        fk: ForeignKey,
        /// `FK[N→]` at removal time: only `N`-blocks with a fact
        /// non-dangling w.r.t. this set survive the database reduction.
        outgoing: Vec<ForeignKey>,
    },
}

impl fmt::Display for StepAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepAction::DropTrivial { removed } => {
                write!(f, "drop trivial keys {removed:?}")
            }
            StepAction::CloseStar { added } => {
                write!(f, "close under implication, adding {added:?}")
            }
            StepAction::DropWeak { target, removed } => {
                write!(f, "Lemma 36: drop weak keys into {target}: {removed:?}")
            }
            StepAction::RemoveDD { fk } => write!(f, "Lemma 39: remove d→d key {fk}"),
            StepAction::RemoveOO { fk, .. } => {
                write!(f, "Lemma 37: remove o→o key {fk} and atom {}", fk.to)
            }
            StepAction::RemoveDO { fk, .. } => {
                write!(f, "Lemma 40: remove d→o key {fk} and atom {}", fk.to)
            }
        }
    }
}

/// The terminal stage of a plan.
#[derive(Clone, Debug)]
pub enum Tail {
    /// `FK = ∅`: the Koutris–Wijsen rewriting of the residual query.
    Kw {
        /// The residual query.
        query: Query,
        /// Its consistent FO rewriting.
        formula: Box<Formula>,
        /// The rewriting compiled (guarded strategy) at plan-build time, so
        /// every [`RewritePlan::answer`] call skips straight to slot-based
        /// evaluation (boxed with the formula to keep the enum small).
        compiled: Box<CompiledFormula>,
    },
    /// Lemma 45: branch over the constant-keyed block of `n_atom`.
    Lemma45(Box<Lemma45Step>),
}

/// The Lemma 45 reduction: for an atom `N(⃗c, ⃗t)` with `key(N) = ∅`, the
/// database is a yes-instance iff the block `N(⃗c, ∗)` is non-empty, some
/// fact of it is non-dangling w.r.t. `FK[N→]`, and **every** fact of the
/// block matches `⃗t` and makes the residual problem certain under the
/// induced binding (evaluated over an injectively renamed database so that
/// the residual rewriting, built once with a generic constant `b`, applies
/// to every binding).
#[derive(Clone, Debug)]
pub struct Lemma45Step {
    /// The atom `N(⃗c, ⃗t)`.
    pub n_atom: Atom,
    /// `FK[N→]` (for the non-dangling test).
    pub outgoing: Vec<ForeignKey>,
    /// The relations of `q^FK_N`, all removed from the query.
    pub removed: BTreeSet<RelName>,
    /// `q₀ = q ∖ q^FK_N`, with its original terms (renaming specification).
    pub q0: Query,
    /// `⃗x = vars(N)` in canonical order.
    pub xs: Vec<Var>,
    /// `FK₀ = FK↾q₀`.
    pub fk0: FkSet,
    /// The generic constant `b`.
    pub b: Cst,
    /// The residual plan for `(q₀[⃗x→⃗b, consts→b], FK₀)`.
    pub sub_plan: Box<RewritePlan>,
    /// The injective renaming's invented constants, memoized so repeated
    /// `answer()` calls on a long-lived plan *recycle* them instead of
    /// growing the global interner without bound. Clones share the table.
    pub rename_table: RenameTable,
}

/// A consistent-first-order-rewriting plan: the executable composition of
/// Appendix E reductions ending in a Koutris–Wijsen formula.
#[derive(Clone, Debug)]
pub struct RewritePlan {
    /// The original problem.
    pub problem: Problem,
    /// The reduction steps, in application order.
    pub steps: Vec<PlanStep>,
    /// The terminal stage.
    pub tail: Tail,
}

impl RewritePlan {
    /// Builds the plan for `problem`; fails with the Theorem 12 hardness
    /// reason when `CERTAINTY(q, FK)` is not in FO.
    pub fn build(problem: &Problem) -> Result<RewritePlan, BuildError> {
        check_invariants(problem.query(), problem.fks())?;

        let mut q = problem.query().clone();
        let mut fks = problem.fks().clone();
        let mut steps: Vec<PlanStep> = Vec::new();
        let push = |steps: &mut Vec<PlanStep>, action: StepAction, q: &Query, fks: &FkSet| {
            steps.push(PlanStep {
                action,
                query_after: q.clone(),
                fks_after: fks.clone(),
            });
        };

        // Step 0a: drop trivial keys.
        let trivial: Vec<ForeignKey> = fks
            .iter()
            .filter(|fk| fk.is_trivial(fks.schema()))
            .copied()
            .collect();
        if !trivial.is_empty() {
            fks = fks.without_all(trivial.iter());
            push(&mut steps, StepAction::DropTrivial { removed: trivial }, &q, &fks);
        }

        // Step 0b: FK := FK*.
        let star = fk_star(&fks);
        let added: Vec<ForeignKey> = star.iter().filter(|fk| !fks.contains(fk)).copied().collect();
        if !added.is_empty() {
            fks = star;
            push(&mut steps, StepAction::CloseStar { added }, &q, &fks);
        }

        // Lemma 36: remove weak keys, grouped by referenced relation.
        while let Some(weak) = fks
            .weak()
            .into_iter()
            .find(|fk| !fk.is_trivial(fks.schema()))
        {
            let target = weak.to;
            let removed: Vec<ForeignKey> = fks
                .weak()
                .into_iter()
                .filter(|fk| fk.to == target)
                .collect();
            fks = fks.without_all(removed.iter());
            push(&mut steps, StepAction::DropWeak { target, removed }, &q, &fks);
            debug_assert!(check_invariants(&q, &fks).is_ok());
        }
        if !fks.weak().is_empty() {
            return Err(BuildError::Internal("weak keys remain after Lemma 36".into()));
        }

        // Lemma 39: remove d →str d keys.
        while let Some(fk) = fks
            .strong()
            .into_iter()
            .find(|fk| fk_type(&q, &fks, fk) == FkType::DisobedientDisobedient)
        {
            fks = fks.without(&fk);
            push(&mut steps, StepAction::RemoveDD { fk }, &q, &fks);
            debug_assert!(check_invariants(&q, &fks).is_ok());
        }

        // Lemma 37: remove o →str o keys into leaves.
        loop {
            let oo: Vec<ForeignKey> = fks
                .strong()
                .into_iter()
                .filter(|fk| fk_type(&q, &fks, fk) == FkType::ObedientObedient)
                .collect();
            if oo.is_empty() {
                break;
            }
            let Some(fk) = oo.iter().find(|fk| fks.outgoing(fk.to).is_empty()).copied() else {
                return Err(BuildError::Internal(
                    "o→o keys exist but none has a leaf target (obedience should forbid cycles)"
                        .into(),
                ));
            };
            if !fks.referencing(fk.to).iter().all(|r| *r == fk) {
                return Err(BuildError::Internal(format!(
                    "Lemma 34 violated: {} is referenced by several keys",
                    fk.to
                )));
            }
            let relevance_query = {
                let rels = crate::obedience::qfk_atoms_of(&q, &fks, fk.from);
                q.restrict(&rels)
            };
            q = q.without(fk.to);
            fks = fks.without(&fk);
            push(&mut steps, StepAction::RemoveOO { fk, relevance_query }, &q, &fks);
            debug_assert!(check_invariants(&q, &fks).is_ok());
        }

        // Only d →str o keys may remain.
        for fk in fks.iter() {
            match fk_type(&q, &fks, fk) {
                FkType::DisobedientObedient => {}
                other => {
                    return Err(BuildError::Internal(format!(
                        "unexpected key {fk} of type {other} after Lemmas 36/37/39"
                    )))
                }
            }
        }

        // Alternate Lemma 45 / Lemma 40 until FK = ∅, then Koutris–Wijsen.
        loop {
            if fks.is_empty() {
                let formula = kw_rewrite(&q).map_err(|e| {
                    BuildError::Internal(format!("Koutris–Wijsen base case failed: {e}"))
                })?;
                let compiled = CompiledFormula::compile(&formula, Strategy::Guarded);
                return Ok(RewritePlan {
                    problem: problem.clone(),
                    steps,
                    tail: Tail::Kw {
                        query: q,
                        formula: Box::new(formula),
                        compiled: Box::new(compiled),
                    },
                });
            }

            if let Some(n_rel) = q.relations().find(|&r| q.key_vars(r).is_empty()) {
                // Lemma 45.
                let n_atom = q.atom(n_rel).expect("relation from query").clone();
                let outgoing = fks.outgoing(n_rel);
                let mut removed = qfk_atoms(&q, &fks, &nonkey_positions(&q, n_rel));
                removed.insert(n_rel);
                let q0 = {
                    let keep: BTreeSet<RelName> =
                        q.relations().filter(|r| !removed.contains(r)).collect();
                    q.restrict(&keep)
                };
                let fk0 = fks.restrict_to_query(&q0);
                let xs: Vec<Var> = n_atom.vars().into_iter().collect();
                let b = Cst::fresh("b");
                let q0_generic = genericize(&q0, &xs, b);
                let sub_problem = Problem::new(q0_generic, fk0.clone()).map_err(|e| {
                    BuildError::Internal(format!("Lemma 45 residual problem invalid: {e}"))
                })?;
                let sub_plan = RewritePlan::build(&sub_problem).map_err(|e| {
                    BuildError::Internal(format!("Lemma 45 residual plan failed: {e}"))
                })?;
                return Ok(RewritePlan {
                    problem: problem.clone(),
                    steps,
                    tail: Tail::Lemma45(Box::new(Lemma45Step {
                        n_atom,
                        outgoing,
                        removed,
                        q0,
                        xs,
                        fk0,
                        b,
                        sub_plan: Box::new(sub_plan),
                        rename_table: RenameTable::new(b),
                    })),
                });
            }

            // Lemma 40: every atom has key variables; remove one d→o key.
            let fk = *fks.iter().next().expect("non-empty checked");
            if !fks.referencing(fk.to).iter().all(|r| *r == fk) {
                return Err(BuildError::Internal(format!(
                    "Lemma 34 violated: {} is referenced by several keys",
                    fk.to
                )));
            }
            let outgoing = fks.outgoing(fk.from);
            q = q.without(fk.to);
            fks = fks.without(&fk);
            push(&mut steps, StepAction::RemoveDO { fk, outgoing }, &q, &fks);
            debug_assert!(check_invariants(&q, &fks).is_ok());
        }
    }

    /// Evaluates the plan: is `db` a yes-instance of `CERTAINTY(q, FK)`?
    ///
    /// Facts over relations not occurring in `q` cannot influence the answer
    /// (no foreign key of a set *about* `q` touches them) and are ignored.
    pub fn answer(&self, db: &Instance) -> bool {
        let rels: BTreeSet<RelName> = self.problem.query().relations().collect();
        let mut cur = db.restrict(&rels);
        for step in &self.steps {
            cur = apply_step(&step.action, &cur);
        }
        match &self.tail {
            Tail::Kw { compiled, .. } => compiled.eval_closed(&cur),
            Tail::Lemma45(step) => step.answer(&cur),
        }
    }

    /// The residual query of the Koutris–Wijsen base case, if the pipeline
    /// bottoms out there directly.
    pub fn kw_query(&self) -> Option<&Query> {
        match &self.tail {
            Tail::Kw { query, .. } => Some(query),
            Tail::Lemma45(_) => None,
        }
    }

    /// Total number of steps, counting nested Lemma 45 plans.
    pub fn depth(&self) -> usize {
        self.steps.len()
            + match &self.tail {
                Tail::Kw { .. } => 1,
                Tail::Lemma45(s) => 1 + s.sub_plan.depth(),
            }
    }
}

/// Replaces the variables `xs` and **all constants** of `q0` by the generic
/// constant `b` (the paper's final renaming argument in Lemma 45, which
/// reduces to a problem whose only constant is `b`).
fn genericize(q0: &Query, xs: &[Var], b: Cst) -> Query {
    let atoms = q0
        .atoms()
        .iter()
        .map(|a| {
            Atom::new(
                a.rel,
                a.terms
                    .iter()
                    .map(|t| match t {
                        Term::Cst(_) => Term::Cst(b),
                        Term::Var(x) if xs.contains(x) => Term::Cst(b),
                        other => *other,
                    })
                    .collect(),
            )
        })
        .collect();
    Query::new(q0.schema().clone(), atoms).expect("renaming preserves validity")
}

/// Checks Theorem 12's FO conditions.
pub(crate) fn check_invariants(q: &Query, fks: &FkSet) -> Result<(), BuildError> {
    if !AttackGraph::of(q).is_acyclic() {
        return Err(BuildError::CyclicAttackGraph);
    }
    let ws = block_interference(q, fks);
    if !ws.is_empty() {
        return Err(BuildError::BlockInterference(ws));
    }
    Ok(())
}

fn apply_step(action: &StepAction, cur: &Instance) -> Instance {
    match action {
        StepAction::DropTrivial { .. }
        | StepAction::CloseStar { .. }
        | StepAction::DropWeak { .. }
        | StepAction::RemoveDD { .. } => cur.clone(),
        StepAction::RemoveOO { fk, relevance_query } => {
            let mut out = Instance::new(cur.schema().clone());
            for rel in cur.populated_relations() {
                if rel == fk.to {
                    continue; // drop the S-relation
                }
                if rel == fk.from {
                    for (_, facts) in cur.blocks(rel) {
                        if block_is_relevant(cur, relevance_query, &facts[0]) {
                            for f in facts {
                                out.insert(f).expect("same schema");
                            }
                        }
                    }
                } else {
                    for f in cur.facts_of(rel) {
                        out.insert(f).expect("same schema");
                    }
                }
            }
            out
        }
        StepAction::RemoveDO { fk, outgoing } => {
            let mut out = Instance::new(cur.schema().clone());
            for rel in cur.populated_relations() {
                if rel == fk.to {
                    continue; // drop the O-relation
                }
                if rel == fk.from {
                    for (_, facts) in cur.blocks(rel) {
                        let keep = facts
                            .iter()
                            .any(|f| outgoing.iter().all(|o| !cur.is_dangling(f, o)));
                        if keep {
                            for f in facts {
                                out.insert(f).expect("same schema");
                            }
                        }
                    }
                } else {
                    for f in cur.facts_of(rel) {
                        out.insert(f).expect("same schema");
                    }
                }
            }
            out
        }
    }
}

impl Lemma45Step {
    /// Evaluates the Lemma 45 branch on the (already reduced) instance.
    pub fn answer(&self, cur: &Instance) -> bool {
        let sig = cur.sig(self.n_atom.rel);
        let key: Vec<Cst> = self
            .n_atom
            .key_terms(sig)
            .iter()
            .map(|t| t.as_cst().expect("key(N) = ∅ means constant key terms"))
            .collect();
        let block = cur.block(self.n_atom.rel, &key);
        if block.is_empty() {
            return false;
        }
        let non_dangling_exists = block
            .iter()
            .any(|f| self.outgoing.iter().all(|fk| !cur.is_dangling(f, fk)));
        if !non_dangling_exists {
            return false;
        }
        for fact in &block {
            let Some(theta) = unify(&self.n_atom, fact, &Valuation::new()) else {
                // A repair may keep this non-matching fact, falsifying q.
                return false;
            };
            let renamed = self.rename(cur, &theta);
            if !self.sub_plan.answer(&renamed) {
                return false;
            }
        }
        true
    }

    /// The injective renaming `f` of the paper: each database value is
    /// renamed per position according to the term of `q₀[⃗x→θ(⃗x)]` at that
    /// position; a value equal to the expected constant becomes `b`. The
    /// renamed row stream comes lazily from an [`InstanceView`] (restricted
    /// to `q₀`'s relations by construction), and the invented constants are
    /// recycled through the step's [`RenameTable`] across calls; only this
    /// interpretive oracle path still materializes the result, because the
    /// generic residual plan needs a database to recurse on.
    fn rename(&self, db: &Instance, theta: &Valuation) -> Instance {
        let view = InstanceView::new(db);
        let mut out = Instance::new(db.schema().clone());
        for rel in self.q0.relations() {
            let atom = self.q0.atom(rel).expect("relation of q0");
            let spec: Vec<Term> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(x) => match theta.get(x) {
                        Some(&c) => Term::Cst(c),
                        None => Term::Var(*x),
                    },
                    t => *t,
                })
                .collect();
            for args in view.renamed_rows(rel, &spec, &self.rename_table) {
                out.insert(Fact::new(rel, args)).expect("same schema");
            }
        }
        out
    }
}

impl fmt::Display for RewritePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan for {}", self.problem)?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "  {}. {}   ⟹   CERTAINTY({}, {})",
                i + 1,
                step.action,
                step.query_after,
                step.fks_after
            )?;
        }
        match &self.tail {
            Tail::Kw { query, formula, .. } => {
                writeln!(f, "  ⊢ Koutris–Wijsen rewriting of {query}:")?;
                write!(f, "    {formula}")
            }
            Tail::Lemma45(s) => {
                writeln!(
                    f,
                    "  ⊢ Lemma 45 on {} (binding {:?}, generic constant {}):",
                    s.n_atom, s.xs, s.b
                )?;
                let sub = s.sub_plan.to_string();
                for line in sub.lines() {
                    writeln!(f, "    {line}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    fn plan(schema: &str, query: &str, fks: &str) -> RewritePlan {
        let s = Arc::new(parse_schema(schema).unwrap());
        let q = parse_query(&s, query).unwrap();
        let k = parse_fks(&s, fks).unwrap();
        RewritePlan::build(&Problem::new(q, k).unwrap()).unwrap()
    }

    #[test]
    fn example_13_q1_reduces_via_lemma_37() {
        // q1 = {N(x,u,y), O(y,w)}, FK = {N[3]→O}: o→o, so Lemma 37 removes
        // the O-atom; the residual query is {N(x,u,y)} with no keys.
        let p = plan("N[3,1] O[2,1]", "N(x,u,y), O(y,w)", "N[3] -> O");
        assert_eq!(p.steps.len(), 1);
        assert!(matches!(p.steps[0].action, StepAction::RemoveOO { .. }));
        let kw = p.kw_query().expect("KW tail");
        assert_eq!(kw.len(), 1);
        assert!(kw.contains(RelName::new("N")));
    }

    #[test]
    fn example_13_q1_answer_matches_paper_witness() {
        // The paper's witness: {N(c,1,a), N(c,2,b), O(a,3)} is a
        // yes-instance of CERTAINTY(q1, FK) but a no-instance of
        // CERTAINTY(q1) (without keys).
        let p = plan("N[3,1] O[2,1]", "N(x,u,y), O(y,w)", "N[3] -> O");
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let db = parse_instance(&s, "N(c,1,a) N(c,2,b) O(a,3)").unwrap();
        assert!(p.answer(&db), "paper says yes-instance with the FK");

        // Without the foreign key the same db is a no-instance.
        let q1 = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
        let pk_plan = RewritePlan::build(&Problem::pk_only(q1)).unwrap();
        assert!(!pk_plan.answer(&db), "paper says no-instance without the FK");
    }

    #[test]
    fn example_13_q3_matches_pk_only_rewriting() {
        // q3 = {N(x,'c',y), O(y,'c')}: d→d, removed by Lemma 39; the paper
        // notes CERTAINTY(q3, FK) and CERTAINTY(q3) coincide.
        let p = plan("N[3,1] O[2,1]", "N(x,'c',y), O(y,'c')", "N[3] -> O");
        assert!(matches!(p.steps[0].action, StepAction::RemoveDD { .. }));

        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let q3 = parse_query(&s, "N(x,'c',y), O(y,'c')").unwrap();
        let pk_plan = RewritePlan::build(&Problem::pk_only(q3)).unwrap();
        for text in [
            "N(a,c,1) O(1,c)",
            "N(a,c,1) O(1,d)",
            "N(a,c,1) N(a,d,2) O(1,c)",
            "N(a,c,1) N(a,c,2) O(1,c) O(2,c)",
            "",
        ] {
            let db = parse_instance(&s, text).unwrap();
            assert_eq!(p.answer(&db), pk_plan.answer(&db), "on {text}");
        }
    }

    #[test]
    fn section8_example_via_lemma_45() {
        // q = {N('c',y), O(y), P(y)}, FK = {N[2]→O}: key(N) = ∅ triggers
        // Lemma 45. Paper's rewriting: ∃y(N(c,y) ∧ O(y)) ∧ ∀y(N(c,y)→P(y)).
        let p = plan("N[2,1] O[1,1] P[1,1]", "N('c',y), O(y), P(y)", "N[2] -> O");
        assert!(matches!(p.tail, Tail::Lemma45(_)));

        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        // The paper's instance: yes; removing either P-fact: no.
        let yes = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
        assert!(p.answer(&yes));
        let no1 = parse_instance(&s, "N(c,a) N(c,b) O(a) P(b)").unwrap();
        assert!(!p.answer(&no1));
        let no2 = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a)").unwrap();
        assert!(!p.answer(&no2));
        // Both N-facts dangling and no O at all: the empty repair falsifies.
        let no3 = parse_instance(&s, "N(c,a) N(c,b) P(a) P(b)").unwrap();
        assert!(!p.answer(&no3));
        // Empty N-block: no.
        let no4 = parse_instance(&s, "O(a) P(a)").unwrap();
        assert!(!p.answer(&no4));
    }

    #[test]
    fn weak_keys_are_dropped_with_identity_reduction() {
        // q = {R(x,y), S(x)} with weak R[1]→S.
        let p = plan("R[2,1] S[1,1]", "R(x,y), S(x)", "R[1] -> S");
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(s.action, StepAction::DropWeak { .. })));

        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        // With the weak key removed this is plain CERTAINTY({R(x,y),S(x)}).
        let yes = parse_instance(&s, "R(a,1) S(a)").unwrap();
        assert!(p.answer(&yes));
        // S(a) missing: a repair dropping nothing still falsifies S(x)∧R(x,y)
        // — wait, with FKs the dangling R(a,1) can be repaired by inserting
        // S(a). {} is ⊕-closer? No: {} deletes R(a,1) while insertion-repair
        // keeps it; both are repairs, and the inserting repair satisfies q,
        // the deleting one does not.
        let no = parse_instance(&s, "R(a,1)").unwrap();
        assert!(!p.answer(&no));
    }

    #[test]
    fn obedient_source_goes_through_lemma_37() {
        // q = {N(x,y), O(y)}, FK = {N[2]→O}: the N-atom is obedient (its
        // only non-key position holds y, which occurs nowhere outside the
        // closure), so the key is o→o and Lemma 37 applies.
        let p = plan("N[2,1] O[1,1]", "N(x,y), O(y)", "N[2] -> O");
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(s.action, StepAction::RemoveOO { .. })));

        let s = Arc::new(parse_schema("N[2,1] O[1,1]").unwrap());
        // Single dangling N-fact: droppable ({} is a repair) → no.
        let no = parse_instance(&s, "N(a,b)").unwrap();
        assert!(!p.answer(&no));
        // Non-dangling N-fact: kept in every repair → yes.
        let yes = parse_instance(&s, "N(a,b) O(b)").unwrap();
        assert!(p.answer(&yes));
        // Block {N(a,b), N(a,z)} with only O(b): the repair choosing N(a,z)
        // inserts O(z) and satisfies q as well → yes.
        let yes2 = parse_instance(&s, "N(a,b) N(a,z) O(b)").unwrap();
        assert!(p.answer(&yes2));
    }

    #[test]
    fn lemma_40_do_removal() {
        // q = {N(x,y), O(y), T(z,y), U(z,y)}, FK = {N[2]→O}: the extra
        // occurrences of y make the N-atom disobedient (condition III), the
        // T/U pair keeps the attack graph acyclic and y determined, N's key
        // variable x is isolated from y in q∖{N} so (3b) fails, and (3a)
        // fails because P_N∖{(N,2)} = ∅. Hence d→o without interference,
        // every key non-empty: Lemma 40.
        let p = plan(
            "N[2,1] O[1,1] T[2,1] U[2,1]",
            "N(x,y), O(y), T(z,y), U(z,y)",
            "N[2] -> O",
        );
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(s.action, StepAction::RemoveDO { .. })));

        let s = Arc::new(parse_schema("N[2,1] O[1,1] T[2,1] U[2,1]").unwrap());
        // Everything consistent and matching: yes.
        let yes = parse_instance(&s, "N(a,b) O(b) T(t,b) U(t,b)").unwrap();
        assert!(p.answer(&yes));
        // Dangling N-fact: a repair drops it → no.
        let no = parse_instance(&s, "N(a,b) T(t,b) U(t,b)").unwrap();
        assert!(!p.answer(&no));
        // T/U disagree on y: q unsatisfiable in the unique repair → no.
        let no2 = parse_instance(&s, "N(a,b) O(b) T(t,b) U(t,zz)").unwrap();
        assert!(!p.answer(&no2));
    }

    #[test]
    fn hard_cases_rejected() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1] R[2,1] S[2,1]").unwrap());
        // Block-interference: §4's q.
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        match RewritePlan::build(&Problem::new(q, fks).unwrap()) {
            Err(BuildError::BlockInterference(ws)) => assert!(!ws.is_empty()),
            other => panic!("expected block-interference, got {other:?}"),
        }
        // Cyclic attack graph.
        let q2 = parse_query(&s, "R(x,y), S(y,x)").unwrap();
        let p2 = Problem::pk_only(q2);
        assert!(matches!(
            RewritePlan::build(&p2),
            Err(BuildError::CyclicAttackGraph)
        ));
    }

    #[test]
    fn plan_display_mentions_lemmas() {
        let p = plan("N[2,1] O[1,1] P[1,1]", "N('c',y), O(y), P(y)", "N[2] -> O");
        let shown = p.to_string();
        assert!(shown.contains("Lemma 45"));
        assert!(p.depth() >= 2);
    }

    #[test]
    fn fk_star_closure_step_added_when_needed() {
        // R[2]→S, S[1]→T: the closure adds R[2]→T.
        let p = plan(
            "R[2,1] S[2,1] T[1,1]",
            "R(x,y), S(y,z), T(y)",
            "R[2] -> S, S[1] -> T",
        );
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(s.action, StepAction::CloseStar { .. })));
    }

    #[test]
    fn trivial_keys_dropped() {
        let p = plan("S[2,1] R[2,1]", "S(x,y), R(y,z)", "S[1] -> S");
        assert!(matches!(p.steps[0].action, StepAction::DropTrivial { .. }));
        // Residual: plain CERTAINTY over both atoms.
        assert!(p.kw_query().is_some());
    }
}
