//! The dependency graph of a foreign-key set and the implication closure
//! `FK*` (paper §3.2).
//!
//! The dependency graph has a vertex `(R, i)` for every position of every
//! relation occurring in `FK`; each key `R[i] → S` (with `S` of signature
//! `[m, 1]`) induces edges from `(R, i)` to `(S, j)` for every `j ∈ [m]`; an
//! edge into `(S, j)` with `j ≠ 1` is *special*. The closure `P_FK` of a
//! position set `P` is everything reachable from `P` (paths of length ≥ 0 —
//! in particular, `P ⊆ P_FK` even for positions outside the graph).
//!
//! For unary inclusion dependencies, logical implication is reflexivity plus
//! transitivity (Casanova–Fagin–Papadimitriou), so `FK*` is the transitive
//! closure of `FK` through *key links* `S[1] → T`. Trivial keys `R[1] → R`
//! (signature `[n,1]`) are implied but can never be falsified; we exclude
//! them from `FK*`, because including them would add spurious special edges
//! `(R,1) → (R,j)` to the dependency graph and corrupt the obedience
//! analysis (see DESIGN.md §2.3).

use cqa_model::{FkSet, ForeignKey, Position, RelName};
use std::collections::{BTreeMap, BTreeSet};

/// The dependency graph of a foreign-key set.
#[derive(Clone, Debug)]
pub struct DepGraph {
    edges: BTreeMap<Position, BTreeSet<Position>>,
    vertices: BTreeSet<Position>,
}

impl DepGraph {
    /// Builds the dependency graph of `fks`.
    pub fn of(fks: &FkSet) -> DepGraph {
        let schema = fks.schema();
        let mut vertices = BTreeSet::new();
        for rel in fks.relations() {
            let sig = schema.signature(rel).expect("fk validated");
            for i in 1..=sig.arity {
                vertices.insert(Position::new(rel, i));
            }
        }
        let mut edges: BTreeMap<Position, BTreeSet<Position>> = BTreeMap::new();
        for fk in fks.iter() {
            let from = Position::new(fk.from, fk.pos);
            let to_sig = schema.signature(fk.to).expect("fk validated");
            let entry = edges.entry(from).or_default();
            for j in 1..=to_sig.arity {
                entry.insert(Position::new(fk.to, j));
            }
        }
        DepGraph { edges, vertices }
    }

    /// The vertices.
    pub fn vertices(&self) -> &BTreeSet<Position> {
        &self.vertices
    }

    /// Successors of a position.
    pub fn successors(&self, p: Position) -> impl Iterator<Item = Position> + '_ {
        self.edges.get(&p).into_iter().flatten().copied()
    }

    /// `P_FK`: all positions reachable from `P` via paths of length ≥ 0.
    /// Positions of `P` outside the graph are included (length-0 paths).
    pub fn closure(&self, p: &BTreeSet<Position>) -> BTreeSet<Position> {
        let mut out = p.clone();
        let mut stack: Vec<Position> = p.iter().copied().collect();
        while let Some(u) = stack.pop() {
            for v in self.successors(u) {
                if out.insert(v) {
                    stack.push(v);
                }
            }
        }
        out
    }

    /// Whether `p` lies on a cycle (reaches itself via ≥ 1 edge).
    pub fn on_cycle(&self, p: Position) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<Position> = self.successors(p).collect();
        while let Some(u) = stack.pop() {
            if u == p {
                return true;
            }
            if seen.insert(u) {
                stack.extend(self.successors(u));
            }
        }
        false
    }
}

/// `FK*` minus trivial keys: the transitive closure of `fks` through key
/// links `S[1] → T`.
pub fn fk_star(fks: &FkSet) -> FkSet {
    let schema = fks.schema().clone();
    // Key-link graph: S → T when S[1] → T ∈ FK (necessarily with S of
    // key length 1... any relation may appear; the link is positional).
    let mut key_links: BTreeMap<RelName, BTreeSet<RelName>> = BTreeMap::new();
    for fk in fks.iter() {
        if fk.pos == 1 {
            key_links.entry(fk.from).or_default().insert(fk.to);
        }
    }
    let reach_from = |start: RelName| -> BTreeSet<RelName> {
        let mut out = BTreeSet::new();
        out.insert(start);
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            if let Some(ts) = key_links.get(&u) {
                for &t in ts {
                    if out.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
        out
    };

    let mut all: BTreeSet<ForeignKey> = BTreeSet::new();
    for fk in fks.iter() {
        for target in reach_from(fk.to) {
            let implied = ForeignKey::new(fk.from, fk.pos, target);
            if !implied.is_trivial(&schema) {
                all.insert(implied);
            }
        }
    }
    FkSet::new(schema, all).expect("implied keys reference unary-key relations")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_schema};
    use std::sync::Arc;

    fn pos(r: &str, i: usize) -> Position {
        Position::new(RelName::new(r), i)
    }

    #[test]
    fn example_3_dependency_graph() {
        // Paper Example 3: FK = {R[1]→S, R[3]→T}, R:[3,2], S,T:[2,1].
        let s = Arc::new(parse_schema("R[3,2] S[2,1] T[2,1]").unwrap());
        let fks = parse_fks(&s, "R[1] -> S, R[3] -> T").unwrap();
        let g = DepGraph::of(&fks);
        let from_r1: BTreeSet<Position> = g.successors(pos("R", 1)).collect();
        assert_eq!(from_r1, [pos("S", 1), pos("S", 2)].into_iter().collect());
        let from_r3: BTreeSet<Position> = g.successors(pos("R", 3)).collect();
        assert_eq!(from_r3, [pos("T", 1), pos("T", 2)].into_iter().collect());
        assert!(g.successors(pos("R", 2)).next().is_none());
    }

    #[test]
    fn closure_includes_length_zero_paths() {
        let s = Arc::new(parse_schema("R[3,2] S[2,1] U[1,1]").unwrap());
        let fks = parse_fks(&s, "R[3] -> S").unwrap();
        let g = DepGraph::of(&fks);
        // (U,1) is not a vertex (U not in FK) but must be in its own closure.
        let p: BTreeSet<Position> = [pos("U", 1)].into_iter().collect();
        assert_eq!(g.closure(&p), p);
        // From (R,3) we reach both S positions.
        let p2: BTreeSet<Position> = [pos("R", 3)].into_iter().collect();
        assert_eq!(
            g.closure(&p2),
            [pos("R", 3), pos("S", 1), pos("S", 2)].into_iter().collect()
        );
    }

    #[test]
    fn cycle_detection() {
        let s = Arc::new(parse_schema("N[2,1] O[2,1]").unwrap());
        // N[2]→N puts (N,2) on a cycle: (N,2) → (N,1),(N,2).
        let fks = parse_fks(&s, "N[2] -> N").unwrap();
        let g = DepGraph::of(&fks);
        assert!(g.on_cycle(pos("N", 2)));
        assert!(!g.on_cycle(pos("N", 1)));

        let fks2 = parse_fks(&s, "N[2] -> O").unwrap();
        let g2 = DepGraph::of(&fks2);
        assert!(!g2.on_cycle(pos("N", 2)));
    }

    #[test]
    fn star_transitivity() {
        // R[2]→S, S[1]→T implies R[2]→T.
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
        let fks = parse_fks(&s, "R[2] -> S, S[1] -> T").unwrap();
        let star = fk_star(&fks);
        assert!(star.contains(&ForeignKey::from_names("R", 2, "T")));
        assert!(star.contains(&ForeignKey::from_names("R", 2, "S")));
        assert!(star.contains(&ForeignKey::from_names("S", 1, "T")));
        assert_eq!(star.len(), 3);
    }

    #[test]
    fn star_excludes_trivial() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        // S[1]→R, R[1]→S: transitively S[1]→S and R[1]→R are implied but
        // trivial; they must be excluded.
        let fks = parse_fks(&s, "S[1] -> R, R[1] -> S").unwrap();
        let star = fk_star(&fks);
        assert!(!star.contains(&ForeignKey::from_names("R", 1, "R")));
        assert!(!star.contains(&ForeignKey::from_names("S", 1, "S")));
        assert_eq!(star.len(), 2);
    }

    #[test]
    fn star_keeps_strong_self_reference() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let fks = parse_fks(&s, "R[2] -> R").unwrap();
        let star = fk_star(&fks);
        assert!(star.contains(&ForeignKey::from_names("R", 2, "R")));
    }

    #[test]
    fn star_of_closed_set_is_identity() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
        let fks = parse_fks(&s, "R[2] -> S, S[1] -> T, R[2] -> T").unwrap();
        let star = fk_star(&fks);
        assert_eq!(star, fk_star(&star));
    }
}
