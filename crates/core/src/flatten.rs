//! Folding a [`RewritePlan`] into a single closed first-order sentence.
//!
//! The plan's database transformations are all first-order definable, so the
//! composition is expressible as one formula:
//!
//! * identity steps contribute nothing;
//! * a Lemma 37 step contributes the view
//!   `R′(⃗u) ≡ R(⃗u) ∧ ∃… (the block of ⃗u is relevant for q^FK_R)`, which is
//!   substituted for every `R`-atom of the downstream formula;
//! * a Lemma 40 step contributes
//!   `N′(⃗u) ≡ N(⃗u) ∧ ∃⃗w (N(⃗u_key, ⃗w) non-dangling w.r.t. FK[N→])`;
//! * a Lemma 45 tail contributes
//!   `∃⃗v (N(⃗c,⃗v) ∧ non-dangling(⃗v)) ∧ ∀⃗y (N(⃗c,⃗y) → match(⃗y) ∧ φ₀(⃗y))`
//!   where `φ₀` is the flattened residual rewriting with the bound variables
//!   substituted for the frozen parameters of `⃗x` (the paper's §8 example
//!   `∃y (N(c,y) ∧ O(y)) ∧ ∀y (N(c,y) → P(y))` is reproduced this way).
//!
//! For the Lemma 45 case the residual plan is *rebuilt* over `q₀` with the
//! variables of `⃗x` frozen as distinct parameter constants (instead of the
//! single generic constant `b` used by [`RewritePlan::answer`]'s
//! renamed-database evaluation). Parameterized flattening is cross-validated
//! against the authoritative renamed-database evaluation by the integration
//! and property tests (`flatten ≡ answer`).

use crate::pipeline::{BuildError, Lemma45Step, PlanStep, RewritePlan, StepAction, Tail};
use crate::problem::Problem;
use cqa_fo::{simplify, Formula};
use cqa_model::{Atom, ForeignKey, Query, Term, Var};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from flattening.
#[derive(Clone, Debug)]
pub struct FlattenError(pub String);

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot flatten plan: {}", self.0)
    }
}

impl std::error::Error for FlattenError {}

/// Flattens `plan` into one closed formula over the *original* database
/// schema.
pub fn flatten(plan: &RewritePlan) -> Result<Formula, FlattenError> {
    let mut formula = flatten_tail(&plan.tail)?;
    for step in plan.steps.iter().rev() {
        formula = substitute_step(step, formula);
    }
    let out = simplify(&formula.unfreeze());
    Ok(out)
}

fn flatten_tail(tail: &Tail) -> Result<Formula, FlattenError> {
    match tail {
        Tail::Kw { formula, .. } => Ok((**formula).clone()),
        Tail::Lemma45(step) => flatten_lemma45(step),
    }
}

fn flatten_lemma45(step: &Lemma45Step) -> Result<Formula, FlattenError> {
    // Residual rewriting with ⃗x frozen as distinct parameter constants.
    let frozen_q0 = step.q0.freeze(&step.xs.iter().copied().collect());
    let sub_problem = Problem::new(frozen_q0, step.fk0.clone())
        .map_err(|e| FlattenError(format!("frozen residual problem invalid: {e}")))?;
    let sub_plan = match RewritePlan::build(&sub_problem) {
        Ok(p) => p,
        Err(BuildError::Internal(m)) => return Err(FlattenError(m)),
        Err(e) => return Err(FlattenError(e.to_string())),
    };
    let phi0 = flatten(&sub_plan)?; // free variables ⃗x after unfreezing

    let n_atom = &step.n_atom;
    let sig_key_len = n_atom.arity() - nonkey_len(step);
    let key_terms: Vec<Term> = n_atom.terms[..sig_key_len].to_vec();
    let nonkey_terms: Vec<Term> = n_atom.terms[sig_key_len..].to_vec();

    // Witness: ∃⃗v (N(⃗c, ⃗v) ∧ ⋀_{fk ∈ FK[N→]} ∃⃗u O(v_i, ⃗u)).
    let vs: Vec<Var> = nonkey_terms.iter().map(|_| Var::fresh("v")).collect();
    let witness_atom = Atom::new(
        n_atom.rel,
        key_terms
            .iter()
            .copied()
            .chain(vs.iter().map(|&v| Term::Var(v)))
            .collect(),
    );
    let mut witness_parts = vec![Formula::Atom(witness_atom)];
    for fk in &step.outgoing {
        witness_parts.push(non_dangling_formula(
            fk,
            &key_terms,
            &vs,
            sig_key_len,
            step.fk0.schema(),
        )?);
    }
    let witness = Formula::exists(vs.iter().copied(), Formula::and(witness_parts));

    // Universal branch: ∀⃗y (N(⃗c, ⃗y) → match ∧ φ₀[x ↦ y]).
    let ys: Vec<Var> = nonkey_terms.iter().map(|_| Var::fresh("y")).collect();
    let mut eqs: Vec<Formula> = Vec::new();
    let mut subst: BTreeMap<Var, Term> = BTreeMap::new();
    for (i, t) in nonkey_terms.iter().enumerate() {
        let y = ys[i];
        match *t {
            Term::Cst(c) => eqs.push(Formula::eq(Term::Var(y), Term::Cst(c))),
            Term::Var(x) => {
                if let Some(prev) = subst.get(&x) {
                    eqs.push(Formula::eq(Term::Var(y), *prev));
                } else {
                    subst.insert(x, Term::Var(y));
                }
            }
        }
    }
    let phi0_bound = phi0.substitute(&subst);
    let guard = Atom::new(
        n_atom.rel,
        key_terms
            .iter()
            .copied()
            .chain(ys.iter().map(|&y| Term::Var(y)))
            .collect(),
    );
    let universal = Formula::forall(
        ys.iter().copied(),
        Formula::implies(
            Formula::Atom(guard),
            Formula::and(eqs.into_iter().chain([phi0_bound])),
        ),
    );

    Ok(Formula::and([witness, universal]))
}

fn nonkey_len(step: &Lemma45Step) -> usize {
    step.fk0
        .schema()
        .signature(step.n_atom.rel)
        .map(|s| s.nonkey_len())
        .unwrap_or(0)
}

/// `∃⃗u O(t, ⃗u)` where `t` is the term at the foreign key's source position.
fn non_dangling_formula(
    fk: &ForeignKey,
    key_terms: &[Term],
    nonkey_vars: &[Var],
    key_len: usize,
    schema: &cqa_model::Schema,
) -> Result<Formula, FlattenError> {
    let src_term = if fk.pos <= key_len {
        key_terms
            .get(fk.pos - 1)
            .copied()
            .ok_or_else(|| FlattenError(format!("bad position in {fk}")))?
    } else {
        Term::Var(
            *nonkey_vars
                .get(fk.pos - key_len - 1)
                .ok_or_else(|| FlattenError(format!("bad position in {fk}")))?,
        )
    };
    let to_sig = schema
        .signature(fk.to)
        .ok_or_else(|| FlattenError(format!("unknown relation {}", fk.to)))?;
    let us: Vec<Var> = (1..to_sig.arity).map(|_| Var::fresh("u")).collect();
    let atom = Atom::new(
        fk.to,
        std::iter::once(src_term)
            .chain(us.iter().map(|&u| Term::Var(u)))
            .collect(),
    );
    Ok(Formula::exists(us, Formula::Atom(atom)))
}

/// Substitutes a step's relation views into the downstream formula.
fn substitute_step(step: &PlanStep, formula: Formula) -> Formula {
    match &step.action {
        StepAction::DropTrivial { .. }
        | StepAction::CloseStar { .. }
        | StepAction::DropWeak { .. }
        | StepAction::RemoveDD { .. } => formula,
        StepAction::RemoveOO { fk, relevance_query } => map_atoms(&formula, &mut |atom| {
            if atom.rel != fk.from {
                return Formula::Atom(atom.clone());
            }
            Formula::and([
                Formula::Atom(atom.clone()),
                block_relevance_formula(relevance_query, atom),
            ])
        }),
        StepAction::RemoveDO { fk, outgoing } => map_atoms(&formula, &mut |atom| {
            if atom.rel != fk.from {
                return Formula::Atom(atom.clone());
            }
            // ∃⃗w (N(⃗t_key, ⃗w) ∧ ⋀ non-dangling): the block of the fact
            // contains a fact that survives the Lemma 40 filter.
            let schema = step.fks_after.schema();
            let sig = schema.signature(atom.rel).expect("validated");
            let ws: Vec<Var> = (0..sig.nonkey_len()).map(|_| Var::fresh("w")).collect();
            let key_terms: Vec<Term> = atom.terms[..sig.key_len].to_vec();
            let member = Atom::new(
                atom.rel,
                key_terms
                    .iter()
                    .copied()
                    .chain(ws.iter().map(|&w| Term::Var(w)))
                    .collect(),
            );
            let mut parts = vec![Formula::Atom(member)];
            for o in outgoing {
                match non_dangling_formula(o, &key_terms, &ws, sig.key_len, schema) {
                    Ok(f) => parts.push(f),
                    Err(_) => return Formula::Atom(atom.clone()),
                }
            }
            Formula::and([
                Formula::Atom(atom.clone()),
                Formula::exists(ws, Formula::and(parts)),
            ])
        }),
    }
}

/// `∃ (fresh copy of q_rel's variables): atoms ∧ key-equalities with the
/// given `R`-atom occurrence` — "the block of this fact is relevant for
/// `q^FK_R`".
fn block_relevance_formula(q_rel: &Query, occurrence: &Atom) -> Formula {
    // Freshen the relevance query's variables.
    let renaming: BTreeMap<Var, Term> = q_rel
        .vars()
        .into_iter()
        .map(|v| (v, Term::Var(Var::fresh("z"))))
        .collect();
    let fresh_q = q_rel.substitute(&renaming);
    let fresh_vars: Vec<Var> = renaming
        .values()
        .filter_map(|t| t.as_var())
        .collect();

    let mut parts: Vec<Formula> = fresh_q
        .atoms()
        .iter()
        .map(|a| Formula::Atom(a.clone()))
        .collect();

    // Key equalities: the renamed R-atom's key terms equal the occurrence's.
    let r_atom = fresh_q.atom(occurrence.rel).expect("R in q^FK_R");
    let sig = fresh_q.sig(occurrence.rel);
    for i in 0..sig.key_len {
        parts.push(Formula::eq(r_atom.terms[i], occurrence.terms[i]));
    }
    Formula::exists(fresh_vars, Formula::and(parts))
}

/// Applies `f` to every atom of the formula.
fn map_atoms(formula: &Formula, f: &mut impl FnMut(&Atom) -> Formula) -> Formula {
    match formula {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Eq(a, b) => Formula::eq(*a, *b),
        Formula::Atom(atom) => f(atom),
        Formula::Not(g) => Formula::not(map_atoms(g, f)),
        Formula::And(gs) => Formula::and(gs.iter().map(|g| map_atoms(g, f))),
        Formula::Or(gs) => Formula::or(gs.iter().map(|g| map_atoms(g, f))),
        Formula::Implies(l, r) => Formula::implies(map_atoms(l, f), map_atoms(r, f)),
        Formula::Exists(vs, g) => Formula::exists(vs.iter().copied(), map_atoms(g, f)),
        Formula::Forall(vs, g) => Formula::forall(vs.iter().copied(), map_atoms(g, f)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_fo::eval::eval_closed;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    fn plan(schema: &str, query: &str, fks: &str) -> RewritePlan {
        let s = Arc::new(parse_schema(schema).unwrap());
        let q = parse_query(&s, query).unwrap();
        let k = parse_fks(&s, fks).unwrap();
        RewritePlan::build(&Problem::new(q, k).unwrap()).unwrap()
    }

    #[test]
    fn section8_formula_matches_paper() {
        // Paper §8: q = {N('c',y), O(y), P(y)}, FK = {N[2]→O} rewrites to
        // ∃y (N(c,y) ∧ O(y)) ∧ ∀y (N(c,y) → P(y)).
        let p = plan("N[2,1] O[1,1] P[1,1]", "N('c',y), O(y), P(y)", "N[2] -> O");
        let f = flatten(&p).unwrap();
        assert!(f.is_closed(), "must be a sentence: {f}");
        let shown = f.to_string();
        // Structure check (fresh variable names differ from the paper's y).
        assert!(shown.contains("N("), "formula: {shown}");
        assert!(shown.contains("O("), "formula: {shown}");
        assert!(shown.contains("P("), "formula: {shown}");
        assert!(shown.contains("∀"), "formula: {shown}");

        // Semantics check on the paper's instances.
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let yes = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
        assert!(eval_closed(&yes, &f));
        for missing in ["P(a)", "P(b)"] {
            let mut db = yes.clone();
            db.remove(&cqa_model::parser::parse_fact(missing).unwrap()).unwrap();
            assert!(!eval_closed(&db, &f), "removing {missing} must flip");
        }
    }

    #[test]
    fn flatten_agrees_with_plan_answer() {
        let cases = [
            ("N[2,1] O[1,1] P[1,1]", "N('c',y), O(y), P(y)", "N[2] -> O"),
            ("N[3,1] O[2,1]", "N(x,u,y), O(y,w)", "N[3] -> O"),
            ("N[3,1] O[2,1]", "N(x,'c',y), O(y,'c')", "N[3] -> O"),
            ("N[2,1] O[1,1]", "N(x,y), O(y)", "N[2] -> O"),
            ("R[2,1] S[1,1]", "R(x,y), S(x)", "R[1] -> S"),
        ];
        let instances = [
            "",
            "N(c,a) N(c,b) O(a) P(a) P(b)",
            "N(a,c,1) O(1,c)",
            "N(a,b) O(b)",
            "N(a,b)",
            "R(a,1) S(a)",
            "R(a,1)",
            "N(c,a) O(a) P(a)",
            "N(x1,c,2) N(x1,d,3) O(2,w) O(3,v)",
        ];
        for (schema, query, fks) in cases {
            let p = plan(schema, query, fks);
            let f = flatten(&p).unwrap();
            assert!(f.is_closed(), "{query}: {f}");
            let s = Arc::new(parse_schema(schema).unwrap());
            for text in instances {
                let Ok(db) = parse_instance(&s, text) else {
                    continue; // instance doesn't fit this schema
                };
                assert_eq!(
                    p.answer(&db),
                    eval_closed(&db, &f),
                    "query {query}, instance {text}, formula {f}"
                );
            }
        }
    }

    #[test]
    fn example_13_q1_flattens_to_query_itself() {
        // The paper: the consistent FO rewriting of CERTAINTY(q1, FK) is q1
        // itself. Our flattened formula must be equivalent; check it on
        // discriminating instances.
        let p = plan("N[3,1] O[2,1]", "N(x,u,y), O(y,w)", "N[3] -> O");
        let f = flatten(&p).unwrap();
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        // q1 holds ⟺ rewriting holds on these:
        for (text, expected) in [
            ("N(c,1,a) N(c,2,b) O(a,3)", true), // paper's witness
            ("N(c,1,a) O(a,3)", true),
            ("N(c,1,a)", false),
            ("O(a,3)", false),
            ("", false),
        ] {
            let db = parse_instance(&s, text).unwrap();
            assert_eq!(eval_closed(&db, &f), expected, "on {text}: {f}");
        }
    }
}
