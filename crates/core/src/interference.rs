//! Block-interference (paper Definition 9) — the new obstruction to
//! first-order rewritability introduced by foreign keys.
//!
//! A strong foreign key `N[j] → O` of `FK*` is *block-interfering* in `q`
//! when choosing a fact inside an `N`-block can force an `O`-fact insertion
//! that re-activates *another* `N`-block, so that certainty propagates block
//! to block (the §4 chain database) — beyond the locality of first-order
//! logic. Formally, with `F = N(t₁…tₙ)` and `O(t_j, ⃗y)` the `O`-atom:
//!
//! 1. the `O`-atom is obedient;
//! 2. `t_j` is a variable of `V = {v ∈ vars(q∖{F}) | K(q) ⊭ ∅→{v}}`;
//! 3. (a) `P_N ∖ {(N,j)}` is disobedient, or (b) some key term `tᵢ` of `N`
//!    is a variable connected to `t_j` in the Gaifman graph `G_V(q∖{F})`.

use crate::depgraph::fk_star;
use crate::obedience::{atom_obedient, is_obedient_set, nonkey_positions};
use cqa_attack::fd::fixed_vars;
use cqa_attack::gaifman::connected_in;
use cqa_model::{FkSet, ForeignKey, Position, Query, Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// How Definition 9's condition 3 was met.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessKind {
    /// (3a): `P_N ∖ {(N, j)}` is not obedient.
    DisobedientRemainder,
    /// (3b): key term at this 1-based position connects to `t_j` in
    /// `G_V(q′)`.
    KeyConnected {
        /// The key position `i` whose term connects to `t_j`.
        key_pos: usize,
    },
}

/// A block-interfering foreign key with its justification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterferenceWitness {
    /// The strong foreign key of `FK*` that interferes.
    pub fk: ForeignKey,
    /// Which branch of condition 3 holds.
    pub kind: WitnessKind,
    /// The interfering variable `t_j`.
    pub var: Var,
}

impl fmt::Display for InterferenceWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            WitnessKind::DisobedientRemainder => write!(
                f,
                "{} is block-interfering via (3a): the remaining non-key positions of {} are disobedient (variable {})",
                self.fk, self.fk.from, self.var
            ),
            WitnessKind::KeyConnected { key_pos } => write!(
                f,
                "{} is block-interfering via (3b): key position ({}, {}) connects to {} in G_V(q′)",
                self.fk, self.fk.from, key_pos, self.var
            ),
        }
    }
}

/// Returns every block-interfering foreign key of `FK*` with its witness;
/// `(q, FK)` *has block-interference* iff the result is non-empty.
pub fn block_interference(q: &Query, fks: &FkSet) -> Vec<InterferenceWitness> {
    let star = fk_star(fks);
    let mut out = Vec::new();
    for fk in star.strong() {
        if let Some(w) = interferes(q, fks, &fk) {
            out.push(w);
        }
    }
    out
}

fn interferes(q: &Query, fks: &FkSet, fk: &ForeignKey) -> Option<InterferenceWitness> {
    let n_atom = q.atom(fk.from)?;
    q.atom(fk.to)?;

    // Condition 1: the O-atom is obedient.
    if !atom_obedient(q, fks, fk.to) {
        return None;
    }

    // Condition 2: t_j is a variable of V.
    let tj = match n_atom.term_at(fk.pos)? {
        Term::Var(v) => v,
        Term::Cst(_) => return None,
    };
    let fixed = fixed_vars(q);
    if fixed.contains(&tj) {
        return None;
    }
    let q_prime = q.without(fk.from);
    if !q_prime.vars().contains(&tj) {
        return None;
    }

    // Condition 3a: P_N ∖ {(N, j)} disobedient.
    let mut pa = nonkey_positions(q, fk.from);
    pa.remove(&Position::new(fk.from, fk.pos));
    if !is_obedient_set(q, fks, &pa) {
        return Some(InterferenceWitness {
            fk: *fk,
            kind: WitnessKind::DisobedientRemainder,
            var: tj,
        });
    }

    // Condition 3b: some key term connects to t_j in G_V(q′).
    let v_set: BTreeSet<Var> = q_prime
        .vars()
        .into_iter()
        .filter(|v| !fixed.contains(v))
        .collect();
    let sig = q.sig(fk.from);
    for i in sig.key_positions() {
        if let Some(Term::Var(ti)) = n_atom.term_at(i) {
            if connected_in(&q_prime, &v_set, ti, tj) {
                return Some(InterferenceWitness {
                    fk: *fk,
                    kind: WitnessKind::KeyConnected { key_pos: i },
                    var: tj,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn example_10_interference_via_3a() {
        // q = {N(x,'c',y), O(y)}, FK = {N[3]→O}: block-interfering via (3a)
        // because {(N,2)} is disobedient (Example 10).
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let ws = block_interference(&q, &fks);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].kind, WitnessKind::DisobedientRemainder);
        assert_eq!(ws[0].var, Var::new("y"));
    }

    #[test]
    fn example_10_variant_with_repeated_variable() {
        // §4 remark: replacing N(x,'c',y) by N(x,y,y) keeps interference
        // (two occurrences of the same variable distinguish block facts).
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,y,y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        assert!(!block_interference(&q, &fks).is_empty());
    }

    #[test]
    fn example_10_variant_fresh_variable_no_interference() {
        // §4 remark: N(x,z,y) with orphan z removes the interference.
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,z,y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        assert!(block_interference(&q, &fks).is_empty());
    }

    #[test]
    fn example_10_variant_selective_o_atom_no_interference() {
        // §4 remark: replacing O(y) by O(y,'c') or O(y,y) removes the
        // interference (O becomes disobedient); O(y,w) keeps it.
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let fks = parse_fks(&s, "N[3] -> O").unwrap();

        let q_const = parse_query(&s, "N(x,'c',y), O(y,'c')").unwrap();
        assert!(block_interference(&q_const, &fks).is_empty());

        let q_rep = parse_query(&s, "N(x,'c',y), O(y,y)").unwrap();
        assert!(block_interference(&q_rep, &fks).is_empty());

        let q_var = parse_query(&s, "N(x,'c',y), O(y,w)").unwrap();
        assert!(!block_interference(&q_var, &fks).is_empty());
    }

    #[test]
    fn example_11_interference_via_3b() {
        // q0 = {N'(x,y), O(y), T(x,y)}, FK = {N'[2]→O}: the T-atom connects
        // x and y, giving interference via (3b).
        let s = Arc::new(parse_schema("Np[2,1] O[1,1] T[2,1]").unwrap());
        let q = parse_query(&s, "Np(x,y), O(y), T(x,y)").unwrap();
        let fks = parse_fks(&s, "Np[2] -> O").unwrap();
        let ws = block_interference(&q, &fks);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].kind, WitnessKind::KeyConnected { key_pos: 1 });
    }

    #[test]
    fn example_11_v_set_restriction() {
        // Example 11's closing remark: adding R('a', x) fixes x
        // (K(q) ⊨ ∅→x), shrinking V and killing the (3b) connection.
        let s = Arc::new(parse_schema("Np[2,1] O[1,1] T[2,1] R[2,1]").unwrap());
        let q = parse_query(&s, "Np(x,y), O(y), T(x,y), R('a',x)").unwrap();
        let fks = parse_fks(&s, "Np[2] -> O").unwrap();
        assert!(block_interference(&q, &fks).is_empty());
    }

    #[test]
    fn example_13_classifications() {
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let fks = parse_fks(&s, "N[3] -> O").unwrap();

        // q1: no interference ((N,2) is obedient).
        let q1 = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
        assert!(block_interference(&q1, &fks).is_empty());

        // q2: interference (constant at (N,2)).
        let q2 = parse_query(&s, "N(x,'c',y), O(y,w)").unwrap();
        assert!(!block_interference(&q2, &fks).is_empty());

        // q3: no interference (O-atom disobedient).
        let q3 = parse_query(&s, "N(x,'c',y), O(y,'c')").unwrap();
        assert!(block_interference(&q3, &fks).is_empty());
    }

    #[test]
    fn weak_keys_never_interfere() {
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(x)").unwrap();
        let fks = parse_fks(&s, "R[1] -> S").unwrap();
        assert!(block_interference(&q, &fks).is_empty());
    }

    #[test]
    fn interference_through_fk_star() {
        // N[3]→S weak into S, S[1]→O: FK* contains the strong N[3]→O.
        // With a constant at (N,2) and obedient O, interference arises
        // through the *implied* key.
        let s = Arc::new(parse_schema("N[3,1] S[1,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), S(y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> S, S[1] -> O").unwrap();
        let ws = block_interference(&q, &fks);
        assert!(
            ws.iter().any(|w| w.fk == ForeignKey::from_names("N", 3, "O")
                || w.fk == ForeignKey::from_names("N", 3, "S")),
            "interference must be found through FK*: {ws:?}"
        );
    }

    #[test]
    fn fixed_tj_blocks_interference() {
        // A constant key on N fixes y via K(q): ∅ → y, so condition 2 fails.
        let s = Arc::new(parse_schema("N[3,2] O[1,1]").unwrap());
        let q = parse_query(&s, "N('a','b',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        assert!(block_interference(&q, &fks).is_empty());
    }

    #[test]
    fn witness_display() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let ws = block_interference(&q, &fks);
        assert!(ws[0].to_string().contains("block-interfering"));
    }
}
