//! The paper's hardness-side constructions, as instance generators:
//!
//! * **Lemma 14 / Appendix C** — for a query with a cyclic attack graph
//!   (atoms `F ⇝ G ⇝ F`), the valuations `Θᵃᵇ` and the database `db_{R,S}`
//!   on which `CERTAINTY(q, PK)` stays L-hard, together with the lemma's
//!   claim that adding foreign keys changes nothing:
//!   `db_{R,S}` is a no-instance of `CERTAINTY(q, PK)` iff it is a
//!   no-instance of `CERTAINTY(q, PK ∪ FK)` — tested against the oracle.
//!
//! * **Lemma 15 / Appendix D.2** — the generic first-order reduction from
//!   directed reachability to the complement of `CERTAINTY(q, FK)` for
//!   *any* block-interfering pair, covering both Definition 9 cases: (3a)
//!   fresh values at the disobedient remainder positions, (3b) the
//!   `θ_u`-indexed copies whose Gaifman connection plays the role of the
//!   distinguishing constant. Figure 3 is the specialization to
//!   `q = {N(x,'c',y), O(y)}`.

use crate::interference::{InterferenceWitness, WitnessKind};
use cqa_attack::fd::fixed_vars;
use cqa_model::{Atom, Cst, Fact, FkSet, Instance, Query, RelName, Term, Var};
use std::collections::BTreeSet;

/// Errors from the hardness generators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HardnessError(pub String);

impl std::fmt::Display for HardnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hardness construction failed: {}", self.0)
    }
}

impl std::error::Error for HardnessError {}

// ───────────────────────── Lemma 15 (Appendix D.2) ─────────────────────────

/// The generic Lemma 15 reduction: given a block-interfering witness for
/// `(q, fks)` and a directed graph with source `s` and target `t` (an edge
/// `t → s` is added internally, as in the proof), builds a database that is
/// a **no**-instance of `CERTAINTY(q, FK)` iff `t` is reachable from `s`.
pub fn lemma15_reduction(
    q: &Query,
    fks: &FkSet,
    witness: &InterferenceWitness,
    vertices: &[usize],
    edges: &[(usize, usize)],
    s: usize,
    t: usize,
) -> Result<Instance, HardnessError> {
    if s == t {
        return Err(HardnessError("source and target must differ".into()));
    }
    let n_rel = witness.fk.from;
    let o_rel = witness.fk.to;
    let j = witness.fk.pos;
    let n_atom = q
        .atom(n_rel)
        .ok_or_else(|| HardnessError(format!("{n_rel} not in query")))?
        .clone();
    q.atom(o_rel)
        .ok_or_else(|| HardnessError(format!("{o_rel} not in query")))?;
    let sig = q.sig(n_rel);

    // C = fixed variables; one shared constant for all of them.
    let fixed = fixed_vars(q);
    let shared = Cst::new("cFix");
    let theta = |z: Var, u: usize| -> Cst {
        if fixed.contains(&z) {
            shared
        } else {
            Cst::new(&format!("c_{z}_{u}"))
        }
    };
    let theta_term = |term: Term, u: usize| -> Cst {
        match term {
            Term::Cst(c) => c,
            Term::Var(z) => theta(z, u),
        }
    };
    let apply = |atom: &Atom, u: usize| -> Fact {
        Fact::new(
            atom.rel,
            atom.terms.iter().map(|&trm| theta_term(trm, u)).collect::<Vec<Cst>>(),
        )
    };

    // G := input graph plus the edge t → s (the proof's cycle closure).
    let mut all_edges: Vec<(usize, usize)> = edges.to_vec();
    all_edges.push((t, s));

    let mut db = Instance::new(q.schema().clone());
    for &u in vertices {
        for atom in q.atoms() {
            if u != s && atom.rel == o_rel {
                continue; // θ_u(q) ∖ {θ_u(O-atom)} for u ≠ s
            }
            db.insert(apply(atom, u))
                .map_err(|e| HardnessError(e.to_string()))?;
        }
    }

    // Pe: positions that receive fresh constants in the edge facts.
    let pe: BTreeSet<usize> = match witness.kind {
        WitnessKind::DisobedientRemainder => sig
            .nonkey_positions()
            .filter(|&i| i != j)
            .collect(),
        WitnessKind::KeyConnected { .. } => BTreeSet::new(),
    };

    for &(u, v) in &all_edges {
        let args: Vec<Cst> = (1..=sig.arity)
            .map(|i| {
                let term = n_atom.terms[i - 1];
                if pe.contains(&i) {
                    Cst::new(&format!("f_{u}_{v}_{i}"))
                } else if i == j {
                    theta_term(term, v)
                } else {
                    theta_term(term, u)
                }
            })
            .collect();
        db.insert(Fact::new(n_rel, args))
            .map_err(|e| HardnessError(e.to_string()))?;
    }
    let _ = fks; // the foreign keys define the problem; the db uses only q
    Ok(db)
}

// ───────────────────────── Lemma 14 (Appendix C) ──────────────────────────

/// The Appendix C valuation `Θᵃᵇ` and database `db_{R,S}` for a query whose
/// attack graph has a 2-cycle `F ⇝ G ⇝ F`. `r_pairs`/`s_pairs` are the
/// binary relations `R` and `S` of the construction.
pub fn lemma14_instance(
    q: &Query,
    f_rel: RelName,
    g_rel: RelName,
    r_pairs: &[(usize, usize)],
    s_pairs: &[(usize, usize)],
) -> Result<Instance, HardnessError> {
    let f_plus = cqa_attack::f_plus(q, f_rel);
    let g_plus = cqa_attack::f_plus(q, g_rel);

    let theta = |x: Var, a: usize, b: usize| -> Cst {
        let in_f = f_plus.contains(&x);
        let in_g = g_plus.contains(&x);
        match (in_f, in_g) {
            (true, false) => Cst::new(&format!("a{a}")),
            (false, true) => Cst::new(&format!("b{b}")),
            (true, true) => Cst::new("bot"),
            (false, false) => Cst::new(&format!("p{a}_{b}")),
        }
    };
    let apply = |atom: &Atom, a: usize, b: usize| -> Fact {
        Fact::new(
            atom.rel,
            atom.terms
                .iter()
                .map(|trm| match trm {
                    Term::Cst(c) => *c,
                    Term::Var(x) => theta(*x, a, b),
                })
                .collect::<Vec<Cst>>(),
        )
    };

    let mut db = Instance::new(q.schema().clone());
    let union: Vec<(usize, usize)> = r_pairs.iter().chain(s_pairs.iter()).copied().collect();
    for atom in q.atoms() {
        if atom.rel == f_rel || atom.rel == g_rel {
            continue;
        }
        for &(a, b) in &union {
            db.insert(apply(atom, a, b))
                .map_err(|e| HardnessError(e.to_string()))?;
        }
    }
    let f_atom = q
        .atom(f_rel)
        .ok_or_else(|| HardnessError(format!("{f_rel} not in query")))?;
    for &(a, b) in r_pairs {
        db.insert(apply(f_atom, a, b))
            .map_err(|e| HardnessError(e.to_string()))?;
    }
    let g_atom = q
        .atom(g_rel)
        .ok_or_else(|| HardnessError(format!("{g_rel} not in query")))?;
    for &(a, b) in s_pairs {
        db.insert(apply(g_atom, a, b))
            .map_err(|e| HardnessError(e.to_string()))?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::block_interference;
    use cqa_model::parser::{parse_fks, parse_query, parse_schema};
    use cqa_repair::{CertaintyOracle, OracleOutcome};
    use std::sync::Arc;

    fn reachable(vertices: &[usize], edges: &[(usize, usize)], s: usize, t: usize) -> bool {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut stack = vec![s];
        seen.insert(s);
        while let Some(u) = stack.pop() {
            if u == t {
                return true;
            }
            for &(a, b) in edges {
                if a == u && seen.insert(b) {
                    stack.push(b);
                }
            }
        }
        let _ = vertices;
        false
    }

    fn verify_lemma15(schema: &str, query: &str, fks_text: &str) {
        let s = Arc::new(parse_schema(schema).unwrap());
        let q = parse_query(&s, query).unwrap();
        let fks = parse_fks(&s, fks_text).unwrap();
        let witness = block_interference(&q, &fks)
            .into_iter()
            .next()
            .expect("pair must be block-interfering");

        // Small DAGs: path, fork, disconnected.
        type GraphCase = (Vec<usize>, Vec<(usize, usize)>, usize, usize);
        let graphs: Vec<GraphCase> = vec![
            (vec![0, 1], vec![(0, 1)], 0, 1),
            (vec![0, 1], vec![], 0, 1),
            (vec![0, 1, 2], vec![(0, 1), (1, 2)], 0, 2),
            (vec![0, 1, 2], vec![(0, 1)], 0, 2),
            (vec![0, 1, 2, 3], vec![(0, 1), (0, 2), (2, 3)], 0, 3),
        ];
        let oracle = CertaintyOracle::new();
        for (vertices, edges, src, dst) in graphs {
            let db = lemma15_reduction(&q, &fks, &witness, &vertices, &edges, src, dst).unwrap();
            let expected_no = reachable(&vertices, &edges, src, dst);
            match oracle.is_certain(&db, &q, &fks) {
                OracleOutcome::Certain => assert!(
                    !expected_no,
                    "{query}: certain but s⇝t holds; edges {edges:?}, db {db}"
                ),
                OracleOutcome::NotCertain(w) => assert!(
                    expected_no,
                    "{query}: falsifying repair {w} but no s⇝t path; edges {edges:?}, db {db}"
                ),
                OracleOutcome::Inconclusive(why) => {
                    panic!("oracle inconclusive on {db}: {why}")
                }
            }
        }
    }

    #[test]
    fn lemma15_case_3a_section4_query() {
        verify_lemma15("N[3,1] O[1,1]", "N(x,'c',y), O(y)", "N[3] -> O");
    }

    #[test]
    fn lemma15_case_3a_repeated_variable_variant() {
        // §4's remark: N(x,y,y) also interferes via (3a).
        verify_lemma15("N[3,1] O[1,1]", "N(x,y,y), O(y)", "N[3] -> O");
    }

    #[test]
    fn lemma15_case_3b_example_11() {
        // Example 11: interference via (3b); the reduction uses the θ_u
        // copies of T in place of the constant.
        verify_lemma15("Np[2,1] O[1,1] T[2,1]", "Np(x,y), O(y), T(x,y)", "Np[2] -> O");
    }

    #[test]
    fn lemma15_rejects_s_equal_t() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let w = block_interference(&q, &fks).into_iter().next().unwrap();
        assert!(lemma15_reduction(&q, &fks, &w, &[0], &[], 0, 0).is_err());
    }

    #[test]
    fn lemma14_fk_invariance() {
        // q = {R(x,y), S(y,x)} with FK ⊆ {R[2]→S, S[2]→R}: on db_{R,S},
        // certainty with and without foreign keys coincides (the heart of
        // Lemma 14's proof).
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,x)").unwrap();
        let no_fk = cqa_model::FkSet::empty(s.clone());
        let with_fk = parse_fks(&s, "R[2] -> S").unwrap();
        let both_fk = parse_fks(&s, "R[2] -> S, S[2] -> R").unwrap();

        type PairSet = (Vec<(usize, usize)>, Vec<(usize, usize)>);
        let pair_sets: Vec<PairSet> = vec![
            (vec![(0, 0)], vec![(0, 0)]),
            (vec![(0, 0), (0, 1)], vec![(0, 0)]),
            (vec![(0, 0)], vec![(0, 0), (1, 0)]),
            (vec![(0, 0), (1, 1)], vec![(0, 0), (1, 1)]),
            (vec![(0, 1)], vec![(1, 0)]),
        ];
        let oracle = CertaintyOracle::new();
        for (r_pairs, s_pairs) in pair_sets {
            let db = lemma14_instance(
                &q,
                RelName::new("R"),
                RelName::new("S"),
                &r_pairs,
                &s_pairs,
            )
            .unwrap();
            let base = oracle.is_certain(&db, &q, &no_fk).as_bool();
            for fks in [&with_fk, &both_fk] {
                let with = oracle.is_certain(&db, &q, fks).as_bool();
                if let (Some(a), Some(b)) = (base, with) {
                    assert_eq!(
                        a, b,
                        "Lemma 14 invariance broken on R={r_pairs:?} S={s_pairs:?} ({db})"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma14_theta_structure() {
        // Θᵃᵇ sends F⁺∖G⁺ to a-constants and G⁺∖F⁺ to b-constants.
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,x)").unwrap();
        let db = lemma14_instance(
            &q,
            RelName::new("R"),
            RelName::new("S"),
            &[(3, 7)],
            &[],
        )
        .unwrap();
        // F⁺ = {x}, G⁺ = {y}: Θ³₇(R(x,y)) = R(a3, b7).
        assert!(db.contains(&Fact::from_names("R", &["a3", "b7"])));
        assert_eq!(db.len(), 1);
    }
}
