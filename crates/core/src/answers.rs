//! Certain answers for non-Boolean queries (paper §1: an answer `⃗a` is
//! *consistent* if `q(⃗a)` holds in every repair).
//!
//! Given a query with designated free variables, the candidate answers are
//! the projections of the satisfying valuations of `q` over `db` — the
//! standard candidate space of CQA prototypes (§2's ConQuer lineage): an
//! answer binding a variable to a value invented by a repair's insertion can
//! never be certain, because fresh values differ between repairs. Each
//! candidate grounds `q` to a Boolean problem, which Theorem 12 classifies
//! and the pipeline answers.
//!
//! **Classify once, answer per tuple.** Although grounding changes the
//! classification relative to the *ungrounded* query (Example 13: `q1` is
//! FO while `q2`, its grounding of `u`, is NL-hard), all groundings of the
//! same free variables share the constant-vs-variable structure the
//! Theorem 12 analyses inspect. The fast path therefore freezes the free
//! variables as distinct parameter constants, classifies that one problem,
//! and compiles one binding-parameterized [`CompiledPlan`] reused across
//! every candidate tuple; a non-FO verdict surfaces before any tuple is
//! evaluated (reported with a representative candidate). When the frozen
//! skeleton cannot be compiled, the per-tuple grounding loop remains as the
//! fallback.
//!
//! The candidate-space choice is validated against the exhaustive oracle
//! over the full `adom^k` tuple space in the integration tests.

use crate::classify::{classify, Classification, NotFoReason};
use crate::compiled_plan::CompiledPlan;
use crate::problem::Problem;
use crate::solver::ExecOptions;
use cqa_model::{all_valuations, Cst, FkSet, Instance, ModelError, Query, Term, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why certain answers could not be computed.
#[derive(Debug)]
pub enum AnswerError {
    /// A free variable does not occur in the query.
    UnknownFreeVariable(Var),
    /// Some grounding produced an invalid problem (should not happen for
    /// valid inputs).
    Model(ModelError),
    /// Some grounding is not in FO (with the Theorem 12 reason and the
    /// offending tuple).
    NotFo(Vec<Cst>, NotFoReason),
}

impl fmt::Display for AnswerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnswerError::UnknownFreeVariable(v) => {
                write!(f, "free variable {v} does not occur in the query")
            }
            AnswerError::Model(e) => write!(f, "{e}"),
            AnswerError::NotFo(tuple, reason) => write!(
                f,
                "grounding by {tuple:?} is not first-order rewritable: {reason}"
            ),
        }
    }
}

impl std::error::Error for AnswerError {}

/// Computes the certain answers of `q` with free variables `free` on `db`:
/// all tuples `⃗a` (over the candidate space of `db`-answers) such that
/// `CERTAINTY(q[⃗x→⃗a], FK)` holds. Runs under [`ExecOptions::default`]
/// (environment-resolved sharding width); see [`certain_answers_with`] for
/// typed control.
pub fn certain_answers(
    q: &Query,
    fks: &FkSet,
    free: &[Var],
    db: &Instance,
) -> Result<BTreeSet<Vec<Cst>>, AnswerError> {
    certain_answers_with(q, fks, free, db, &ExecOptions::default())
}

/// [`certain_answers`] under explicit [`ExecOptions`]: the sharding width
/// is taken from the options' once-resolved policy, so `CQA_THREADS` is
/// not re-parsed per candidate batch.
pub fn certain_answers_with(
    q: &Query,
    fks: &FkSet,
    free: &[Var],
    db: &Instance,
    options: &ExecOptions,
) -> Result<BTreeSet<Vec<Cst>>, AnswerError> {
    let vars = q.vars();
    for v in free {
        if !vars.contains(v) {
            return Err(AnswerError::UnknownFreeVariable(*v));
        }
    }

    // Candidate tuples: projections of db-satisfying valuations.
    let mut candidates: BTreeSet<Vec<Cst>> = BTreeSet::new();
    for val in all_valuations(db, q) {
        candidates.insert(free.iter().map(|v| val[v]).collect());
    }
    if candidates.is_empty() {
        return Ok(BTreeSet::new());
    }

    // Fast path: freeze the free variables as parameters, classify ONCE,
    // compile one parameterized plan, and evaluate it per candidate tuple.
    let distinct = free.iter().collect::<BTreeSet<_>>().len() == free.len();
    if distinct {
        let frozen = q.freeze(&free.iter().copied().collect());
        if let Ok(problem) = Problem::new(frozen, fks.clone()) {
            match classify(&problem) {
                Classification::Fo(plan) => {
                    if let Ok(compiled) = CompiledPlan::compile_parameterized(&plan, free) {
                        // Shard the candidate tuples across threads: each
                        // worker rebinds the parameter slots of the shared
                        // plan over read-only views of `db`. The verdict
                        // vector is joined in input order and the output
                        // is a set, so the result is scheduling-invariant.
                        let policy = options.policy();
                        let tuples: Vec<Vec<Cst>> = candidates.into_iter().collect();
                        let verdicts: Vec<bool> = if policy.should_parallelize(tuples.len()) {
                            policy.pool().map(&tuples, |t| compiled.answer_with(db, t))
                        } else {
                            tuples.iter().map(|t| compiled.answer_with(db, t)).collect()
                        };
                        return Ok(tuples
                            .into_iter()
                            .zip(verdicts)
                            .filter_map(|(t, ok)| ok.then_some(t))
                            .collect());
                    }
                }
                Classification::NotFo(reason) => {
                    // Not FO for the frozen skeleton ⟹ not FO for the
                    // groundings; surface it before evaluating any tuple,
                    // with a representative candidate attached.
                    let tuple = candidates.into_iter().next().expect("checked non-empty");
                    return Err(AnswerError::NotFo(tuple, reason));
                }
            }
        }
    }

    // Fallback: the per-tuple grounding loop (repeated free variables, or a
    // frozen skeleton the pipeline cannot rebuild/compile).
    let mut out = BTreeSet::new();
    for tuple in candidates {
        let subst: BTreeMap<Var, Term> = free
            .iter()
            .zip(tuple.iter())
            .map(|(&v, &c)| (v, Term::Cst(c)))
            .collect();
        let grounded = q.substitute(&subst);
        let problem =
            Problem::new(grounded, fks.clone()).map_err(AnswerError::Model)?;
        match classify(&problem) {
            Classification::Fo(plan) => {
                if plan.answer(db) {
                    out.insert(tuple);
                }
            }
            Classification::NotFo(reason) => {
                return Err(AnswerError::NotFo(tuple, reason));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn bibliography_certain_dois() {
        // "Which DOIs certainly have a 2016 paper with an author named
        // Jeff?" — d1 is ambiguous (Jeff/Jeffrey conflict), d2 is clean.
        let s = Arc::new(parse_schema("DOCS[3,1] R[2,2] AUTHORS[3,1]").unwrap());
        let q = parse_query(&s, "DOCS(x, t, 2016), R(x, y), AUTHORS(y, 'Jeff', z)").unwrap();
        let fks = parse_fks(&s, "R[1] -> DOCS, R[2] -> AUTHORS").unwrap();
        let db = parse_instance(
            &s,
            "DOCS(d1,'t1',2016) R(d1,o1)
             AUTHORS(o1,'Jeff','U') AUTHORS(o1,'Jeffrey','U')
             DOCS(d2,'t2',2016) R(d2,o2) AUTHORS(o2,'Jeff','L')",
        )
        .unwrap();
        let answers = certain_answers(&q, &fks, &[Var::new("x")], &db).unwrap();
        assert_eq!(
            answers,
            [vec![Cst::new("d2")]].into_iter().collect(),
            "only d2 is certain"
        );
    }

    #[test]
    fn all_answers_certain_on_consistent_db() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let fks = FkSet::empty(s.clone());
        let db = parse_instance(&s, "R(a,b) S(b,1) R(c,d) S(d,2)").unwrap();
        let answers = certain_answers(&q, &fks, &[Var::new("x")], &db).unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn unknown_free_variable_rejected() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y)").unwrap();
        let fks = FkSet::empty(s.clone());
        let db = Instance::new(s);
        assert!(matches!(
            certain_answers(&q, &fks, &[Var::new("zzz")], &db),
            Err(AnswerError::UnknownFreeVariable(_))
        ));
    }

    #[test]
    fn grounding_can_change_classification() {
        // Example 13 in answer form: q1 = {N(x,u,y), O(y,w)} with free u.
        // Grounding u to a constant yields q2's NL-hard problem, so the
        // computation must abort with a NotFo error — unless no candidate
        // exists.
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let q = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let db = parse_instance(&s, "N(k,1,a) O(a,3)").unwrap();
        match certain_answers(&q, &fks, &[Var::new("u")], &db) {
            Err(AnswerError::NotFo(tuple, reason)) => {
                assert_eq!(tuple, vec![Cst::new("1")]);
                assert!(reason.nl_hard());
            }
            other => panic!("expected NotFo, got {other:?}"),
        }
        // With an empty candidate space the call succeeds vacuously.
        let empty = Instance::new(s.clone());
        assert!(certain_answers(&q, &fks, &[Var::new("u")], &empty)
            .unwrap()
            .is_empty());
    }
}
