//! Typed verdicts for the unified [`crate::Solver`] API.
//!
//! Every backend — the compiled FO plan, the polynomial-time Horn and
//! reachability solvers, the budgeted exhaustive oracle — answers through
//! one [`Verdict`]: a three-valued [`Certainty`] plus [`Provenance`]
//! recording which backend ran, how long it took, and (for batched calls)
//! how many verdicts shared the measured wall time. `Inconclusive` is an
//! honest verdict, not an error: the budgeted fallback reports it when its
//! search limits are exhausted rather than guessing.

use cqa_model::JoinStrategy;
use std::fmt;
use std::time::Duration;

/// The three-valued answer to `CERTAINTY(q, FK)` on one instance.
///
/// ```
/// use cqa_core::Certainty;
/// assert_eq!(Certainty::from_bool(true), Certainty::Certain);
/// assert_eq!(Certainty::NotCertain.as_bool(), Some(false));
/// assert_eq!(Certainty::Inconclusive.as_bool(), None);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Certainty {
    /// The query holds in every ⊕-repair.
    Certain,
    /// Some ⊕-repair falsifies the query.
    NotCertain,
    /// The budgeted fallback exhausted its limits before reaching a
    /// verdict (see [`Provenance::detail`] for why). Only the fallback
    /// route can produce this — the FO and polynomial-time backends always
    /// decide.
    Inconclusive,
}

impl Certainty {
    /// Lifts a definite boolean answer.
    pub fn from_bool(certain: bool) -> Certainty {
        if certain {
            Certainty::Certain
        } else {
            Certainty::NotCertain
        }
    }

    /// `Some(bool)` for definite verdicts, `None` when inconclusive.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Certainty::Certain => Some(true),
            Certainty::NotCertain => Some(false),
            Certainty::Inconclusive => None,
        }
    }
}

impl fmt::Display for Certainty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Certainty::Certain => write!(f, "certain"),
            Certainty::NotCertain => write!(f, "not certain"),
            Certainty::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// Which concrete evaluator produced a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The view-backed [`crate::CompiledPlan`] (FO route, hot path).
    CompiledPlan,
    /// The interpretive, materializing [`crate::RewritePlan`] (FO route,
    /// chosen explicitly or when plan compilation is unavailable).
    MaterializedPlan,
    /// Dual-Horn SAT with unit propagation (Proposition 17 shape).
    DualHorn,
    /// The cycle-refined reachability criterion (Proposition 16 shape).
    Reachability,
    /// The budgeted exhaustive ⊕-repair oracle (opt-in fallback).
    Oracle,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::CompiledPlan => write!(f, "compiled plan"),
            BackendKind::MaterializedPlan => write!(f, "materialized plan"),
            BackendKind::DualHorn => write!(f, "dual-Horn"),
            BackendKind::Reachability => write!(f, "reachability"),
            BackendKind::Oracle => write!(f, "budgeted oracle"),
        }
    }
}

/// How an incremental re-answer ([`crate::IncrementalSolver::reanswer`])
/// arrived at its verdict — the observable face of delta-certainty, so
/// tests and benchmarks can assert the incremental path actually engaged
/// rather than silently recomputing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The delta did not intersect anything the problem reads — judged
    /// against the statically inferred read-set, which is block-precise on
    /// the compiled FO route — so the prior verdict was reused outright.
    Unaffected,
    /// The delta was localized to the blocks it touches: `reused` residual
    /// verdicts were taken from the session cache, `evaluated` were
    /// (re)computed.
    Localized {
        /// Block-fact residuals answered from the cache.
        reused: usize,
        /// Block-fact residuals evaluated this call.
        evaluated: usize,
    },
    /// The delta was not localizable (or the session had no usable prior
    /// state); a full from-scratch solve ran. The reason says why.
    Recomputed(&'static str),
}

impl fmt::Display for DeltaOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaOutcome::Unaffected => write!(f, "Δ unaffected"),
            DeltaOutcome::Localized { reused, evaluated } => {
                write!(f, "Δ localized ({reused} reused, {evaluated} evaluated)")
            }
            DeltaOutcome::Recomputed(why) => write!(f, "Δ recomputed: {why}"),
        }
    }
}

/// How a verdict was produced: backend, timing, batch context and plan
/// statistics.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// The evaluator that ran.
    pub backend: BackendKind,
    /// Wall-clock time of the call that produced this verdict. When
    /// [`Provenance::batch`] is greater than 1 the time covers the whole
    /// sharded batch this verdict was computed in, not this instance
    /// alone.
    pub elapsed: Duration,
    /// Number of verdicts sharing the measured `elapsed` (1 for
    /// [`crate::Solver::solve`]; the chunk width for batched
    /// [`crate::Solver::solve_many`] chunks that fanned out across
    /// threads).
    pub batch: usize,
    /// Nesting depth of the rewrite plan (FO route only).
    pub plan_depth: Option<usize>,
    /// The join strategy the FO evaluator was compiled with — how acyclic
    /// residual conjunctions execute (Yannakakis semijoin passes vs
    /// backtracking search). `None` outside the FO route, where no
    /// relational join runs.
    pub join: Option<JoinStrategy>,
    /// How the incremental path handled the delta; `None` outside
    /// [`crate::IncrementalSolver::reanswer`].
    pub delta: Option<DeltaOutcome>,
    /// Free-form diagnostics — the fallback oracle's reason when the
    /// verdict is [`Certainty::Inconclusive`]. `None` on the hot paths (no
    /// allocation per solve).
    pub detail: Option<String>,
}

/// The unified solver's answer for one instance: a [`Certainty`] plus the
/// [`Provenance`] of how it was reached.
///
/// ```
/// use cqa_core::{Problem, Solver};
/// use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
/// use std::sync::Arc;
///
/// let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
/// let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
/// let fks = parse_fks(&s, "N[2] -> O").unwrap();
/// let solver = Solver::new(Problem::new(q, fks).unwrap()).unwrap();
/// let db = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
///
/// let verdict = solver.solve(&db);
/// assert!(verdict.is_certain());
/// assert_eq!(verdict.as_bool(), Some(true));
/// assert_eq!(verdict.provenance.backend, cqa_core::BackendKind::CompiledPlan);
/// ```
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The three-valued answer.
    pub certainty: Certainty,
    /// How it was reached.
    pub provenance: Provenance,
}

impl Verdict {
    /// `true` iff the verdict is [`Certainty::Certain`].
    pub fn is_certain(&self) -> bool {
        self.certainty == Certainty::Certain
    }

    /// `Some(bool)` for definite verdicts, `None` when inconclusive.
    pub fn as_bool(&self) -> Option<bool> {
        self.certainty.as_bool()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (via {}", self.certainty, self.provenance.backend)?;
        if let Some(d) = self.provenance.plan_depth {
            write!(f, ", plan depth {d}")?;
        }
        if let Some(j) = self.provenance.join {
            write!(f, ", {j} join")?;
        }
        write!(f, ", {:?}", self.provenance.elapsed)?;
        if self.provenance.batch > 1 {
            write!(f, " over a batch of {}", self.provenance.batch)?;
        }
        if let Some(delta) = &self.provenance.delta {
            write!(f, "; {delta}")?;
        }
        if let Some(why) = &self.provenance.detail {
            write!(f, "; {why}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certainty_round_trips() {
        assert_eq!(Certainty::from_bool(true).as_bool(), Some(true));
        assert_eq!(Certainty::from_bool(false).as_bool(), Some(false));
        assert_eq!(Certainty::Inconclusive.as_bool(), None);
        assert_eq!(Certainty::Certain.to_string(), "certain");
    }

    #[test]
    fn verdict_display_carries_provenance() {
        let v = Verdict {
            certainty: Certainty::Inconclusive,
            provenance: Provenance {
                backend: BackendKind::Oracle,
                elapsed: Duration::from_millis(3),
                batch: 4,
                plan_depth: None,
                join: None,
                delta: Some(DeltaOutcome::Localized {
                    reused: 7,
                    evaluated: 1,
                }),
                detail: Some("budget exhausted".to_string()),
            },
        };
        let text = v.to_string();
        assert!(text.contains("inconclusive"));
        assert!(text.contains("budgeted oracle"));
        assert!(text.contains("batch of 4"));
        assert!(text.contains("7 reused, 1 evaluated"));
        assert!(text.contains("budget exhausted"));
    }
}
