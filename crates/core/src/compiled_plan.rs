//! The compiled, view-backed executor of a [`RewritePlan`]: one
//! [`CompiledPlan`] is built at classification time and then answers any
//! number of databases (and, for parameterized residual plans, any number
//! of bindings) **without materializing a single intermediate
//! [`Instance`]**.
//!
//! The interpretive [`RewritePlan::answer`] realizes each reduction step as
//! a fresh database: Lemma 37/40 copy the surviving facts, and Lemma 45
//! builds a fully renamed instance *per block fact* before recursing — a
//! depth-`d` plan over `b`-fact blocks materializes `O(b^d)` databases and
//! rebuilds every index from scratch. The compiled form keeps the same
//! step structure but executes it lazily:
//!
//! * reduction steps become [`cqa_model::InstanceView`] transformations —
//!   relation hiding plus per-relation block filters whose predicates
//!   (block relevance for Lemma 37, non-danglingness for Lemma 40) are
//!   evaluated through the view with compiled, parameterized queries;
//! * the Koutris–Wijsen tail is the precompiled formula evaluated over the
//!   view through [`CompiledFormula::eval_params`];
//! * a Lemma 45 tail holds the residual plan compiled **once** with the
//!   block-fact binding `θ(⃗x)` as *parameter slots*. Where the
//!   interpretive path renames the database per fact so that the one
//!   generic residual plan applies, the compiled path uses the same
//!   construction as [`crate::flatten`]: the residual problem is rebuilt
//!   with `⃗x` frozen as distinct parameter constants ([`Cst::param`]),
//!   compiled recursively, and evaluated per fact by rebinding the
//!   parameter slots — the paper's injective-renaming argument is exactly
//!   what justifies substituting concrete values for the generic
//!   parameters (`flatten ≡ answer` pins this equivalence in the test
//!   suites, and the differential property tests pit `CompiledPlan`
//!   against the materializing evaluator directly).
//!
//! The interpretive `RewritePlan::answer` stays untouched as the
//! differential-testing oracle, mirroring the `cqa-fo::interp` split of the
//! formula evaluators.
//!
//! **Shard-parallel execution.** Two loops of the compiled executor are
//! embarrassingly parallel and fan out across a scoped thread pool when a
//! [`ParallelPolicy`] says the work is large enough
//! ([`CompiledPlan::answer_parallel`]):
//!
//! * the filter steps partition the filtered relation's visible blocks
//!   into per-thread range views ([`InstanceView::partition`] — an exact
//!   cover, so the shard-local survivor sets union disjointly) while each
//!   worker matches rows against the *whole* incoming view;
//! * the Lemma 45 tail shards the block facts: each worker matches its
//!   facts against `N(⃗c, ⃗t)` and evaluates the residual plan, and the
//!   first failure raises a stop flag that cuts the whole fan-out short
//!   (the certain answer is a universal over block facts).
//!
//! Workers only ever *read*: views are borrow-only ([`cqa_model::view`]'s
//! `FactSource` impls are `Sync`), per-worker state is a few slot arrays,
//! and reductions are order-independent (disjoint set unions, conjunction)
//! — so parallel answers are bit-identical to sequential ones, which
//! `tests/prop_parallel.rs` pins differentially across thread counts.
//! Thread scopes never nest concurrently: each fan-out joins before the
//! plan proceeds, and a Lemma 45 fan-out hands its workers a sequential
//! context, so residuals inside a worker cannot open a second scope.
//! (Sequential stretches do pass the live context down — an outer block
//! below the threshold still lets a large inner block fan out.)
//!
//! Compilation can fail ([`CompileError`]) in the rare case where the
//! frozen residual problem falls outside the pipeline's invariants (the
//! same cases where [`crate::flatten`] fails); callers such as
//! [`crate::CertainEngine`] then fall back to the interpretive evaluator.

use crate::parallel::ParallelPolicy;
use crate::pipeline::{RewritePlan, StepAction, Tail};
use crate::problem::Problem;
use cqa_analyze::{AuditReport, L45Ir, OpIr, PatIr, PlanIr, QueryIr, ReadSet, TailIr};
use cqa_fo::{CompiledFormula, Strategy};
use cqa_model::{
    CompiledQuery, Cst, ForeignKey, Instance, InstanceView, JoinStrategy, ReadLog, RelName, Schema,
    Term, Var,
};
use rayon_lite::ThreadPool;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Why a plan could not be compiled into its view-backed executable form.
#[derive(Clone, Debug)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot compile plan: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// The per-evaluation parallel context threaded through [`CompiledPlan`]'s
/// internals: a borrowed pool (when the policy enabled parallelism at all)
/// plus the policy whose floor gates each fan-out. Copy-cheap;
/// [`ParCtx::SEQUENTIAL`] is what a Lemma 45 worker passes to residual
/// evaluation after a fan-out, so thread scopes never nest concurrently.
#[derive(Clone, Copy)]
struct ParCtx<'p> {
    pool: Option<&'p ThreadPool>,
    policy: ParallelPolicy,
}

impl<'p> ParCtx<'p> {
    /// The inline context: no pool, nothing ever fans out.
    const SEQUENTIAL: ParCtx<'static> = ParCtx {
        pool: None,
        policy: ParallelPolicy::sequential(),
    };

    /// The pool, when a loop over `units` work items clears the policy's
    /// fan-out floor ([`ParallelPolicy::clears_floor`] — the one shared
    /// definition of the threshold).
    fn fan(&self, units: usize) -> Option<&'p ThreadPool> {
        self.pool.filter(|_| self.policy.clears_floor(units))
    }
}

/// A term of a compiled Lemma 45 atom pattern.
#[derive(Clone, Copy, Debug)]
enum PatTerm {
    /// A literal constant of the (frozen) query.
    Cst(Cst),
    /// A parameter of an enclosing Lemma 45 binding: index into the
    /// argument slice.
    Param(usize),
    /// A variable of this step's binding `⃗x`: index into the values
    /// extracted from the current block fact.
    X(usize),
}

/// One non-identity reduction step in compiled form: hide the removed
/// relation and keep only the source blocks passing the step's predicate.
#[derive(Clone, Debug)]
enum CompiledOp {
    /// Lemma 37: keep the blocks of `filter` relevant for `q^FK_R`.
    FilterRelevant {
        drop: RelName,
        filter: RelName,
        relevance: CompiledQuery,
        /// Index of the `filter`-atom inside `relevance`.
        anchor: usize,
    },
    /// Lemma 40: keep the blocks of `filter` containing a fact non-dangling
    /// w.r.t. `outgoing`.
    FilterNonDangling {
        drop: RelName,
        filter: RelName,
        outgoing: Vec<ForeignKey>,
    },
}

/// The compiled terminal stage.
#[derive(Clone, Debug)]
enum CompiledTail {
    /// The Koutris–Wijsen formula with its free (parameter) variables
    /// mapped into the argument slice.
    Kw {
        formula: CompiledFormula,
        /// `free_map[i]` = argument index of the formula's `i`-th free var.
        free_map: Vec<usize>,
    },
    /// A Lemma 45 branch.
    Lemma45(Box<CompiledLemma45>),
}

/// The compiled Lemma 45 reduction: match the constant-keyed block of
/// `rel`, extract `θ(⃗x)` per fact, and evaluate the parameter-compiled
/// residual plan under the extended argument slice.
#[derive(Clone, Debug)]
struct CompiledLemma45 {
    rel: RelName,
    /// The ground key of the block (constants and enclosing parameters).
    key: Vec<PatTerm>,
    /// The full-arity match pattern of `N(⃗c, ⃗t)`.
    pattern: Vec<PatTerm>,
    /// Number of binding variables `⃗x` (appended to the arguments, in the
    /// canonical order of [`crate::pipeline::Lemma45Step::xs`]).
    n_xs: usize,
    /// `FK[N→]` for the non-dangling witness test.
    outgoing: Vec<ForeignKey>,
    /// The residual plan, compiled with `params ++ ⃗x` as parameters.
    sub: CompiledPlan,
}

/// An end-to-end executable form of a [`RewritePlan`]: compile once, then
/// [`CompiledPlan::answer`] any number of databases through lazy
/// [`InstanceView`]s. See the module docs.
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    /// The schema of the (possibly frozen) query at this level — kept for
    /// static analysis (audits and read-set inference are schema-driven).
    schema: Arc<Schema>,
    /// The relations of the (possibly frozen) query at this level; the
    /// initial view restriction.
    rels: BTreeSet<RelName>,
    ops: Vec<CompiledOp>,
    tail: CompiledTail,
    n_params: usize,
    /// How acyclic conjunctions execute at every level — the KW tail, the
    /// filter steps' relevance matchers, and nested residual plans are all
    /// compiled for (and routed through) this one strategy.
    join: JoinStrategy,
}

impl CompiledPlan {
    /// Compiles `plan` under the process-default join strategy
    /// ([`JoinStrategy::from_env`]). Fails when a frozen residual problem
    /// cannot be rebuilt (the same cases where [`crate::flatten`] fails).
    pub fn compile(plan: &RewritePlan) -> Result<CompiledPlan, CompileError> {
        CompiledPlan::compile_parameterized(plan, &[])
    }

    /// [`CompiledPlan::compile`] with an explicit join strategy for the
    /// plan's residual conjunctions (KW tail quantifier groups, filter-step
    /// relevance matchers, nested Lemma 45 residuals).
    pub fn compile_with(
        plan: &RewritePlan,
        join: JoinStrategy,
    ) -> Result<CompiledPlan, CompileError> {
        CompiledPlan::compile_parameterized_with(plan, &[], join)
    }

    /// Compiles `plan` with the given *parameters*: variables frozen as
    /// [`Cst::param`] constants inside the plan's queries and formulas
    /// compile to argument-slice positions, so one compiled plan serves
    /// every binding of the parameters (the `certain_answers` fast path
    /// compiles the query once with its free variables as parameters).
    pub fn compile_parameterized(
        plan: &RewritePlan,
        params: &[Var],
    ) -> Result<CompiledPlan, CompileError> {
        CompiledPlan::compile_parameterized_with(plan, params, JoinStrategy::from_env())
    }

    /// The fully explicit compile entry point: parameters plus join
    /// strategy.
    pub fn compile_parameterized_with(
        plan: &RewritePlan,
        params: &[Var],
        join: JoinStrategy,
    ) -> Result<CompiledPlan, CompileError> {
        let rels: BTreeSet<RelName> = plan.problem.query().relations().collect();
        let mut ops = Vec::new();
        for step in &plan.steps {
            match &step.action {
                StepAction::DropTrivial { .. }
                | StepAction::CloseStar { .. }
                | StepAction::DropWeak { .. }
                | StepAction::RemoveDD { .. } => {} // identity reductions
                StepAction::RemoveOO {
                    fk,
                    relevance_query,
                } => {
                    let relevance = CompiledQuery::with_params(relevance_query, params);
                    let anchor = relevance.atom_index(fk.from).ok_or_else(|| {
                        CompileError(format!("{} missing from its relevance query", fk.from))
                    })?;
                    ops.push(CompiledOp::FilterRelevant {
                        drop: fk.to,
                        filter: fk.from,
                        relevance,
                        anchor,
                    });
                }
                StepAction::RemoveDO { fk, outgoing } => {
                    ops.push(CompiledOp::FilterNonDangling {
                        drop: fk.to,
                        filter: fk.from,
                        outgoing: outgoing.clone(),
                    });
                }
            }
        }
        let tail = match &plan.tail {
            Tail::Kw { formula, .. } => {
                // Recompile the rewriting under the requested join strategy
                // (the plan-build-time compile used the process default).
                // The compiled formula's free variables are exactly the
                // unfrozen parameters (`kw_rewrite` unfreezes on exit); map
                // each into the argument slice.
                let formula = CompiledFormula::compile_with(formula, Strategy::Guarded, join);
                let mut free_map = Vec::new();
                for v in formula.free_vars() {
                    let i = params.iter().position(|&p| p == v).ok_or_else(|| {
                        CompileError(format!("free variable {v} is not a parameter"))
                    })?;
                    free_map.push(i);
                }
                CompiledTail::Kw { formula, free_map }
            }
            Tail::Lemma45(step) => {
                // Rebuild the residual problem with ⃗x frozen as distinct
                // parameter constants (the construction validated by
                // `flatten ≡ answer`), then compile it with the extended
                // parameter list.
                let frozen_q0 = step.q0.freeze(&step.xs.iter().copied().collect());
                let sub_problem =
                    Problem::new(frozen_q0, step.fk0.clone()).map_err(|e| {
                        CompileError(format!("frozen residual problem invalid: {e}"))
                    })?;
                let sub_plan = RewritePlan::build(&sub_problem).map_err(|e| {
                    CompileError(format!("frozen residual plan failed: {e}"))
                })?;
                let mut sub_params = params.to_vec();
                sub_params.extend(step.xs.iter().copied());
                let sub = CompiledPlan::compile_parameterized_with(&sub_plan, &sub_params, join)?;

                let sig = step
                    .q0
                    .schema()
                    .signature(step.n_atom.rel)
                    .ok_or_else(|| CompileError(format!("unknown relation {}", step.n_atom.rel)))?;
                let pattern = compile_pattern(&step.n_atom.terms, params, &step.xs)?;
                let key = pattern[..sig.key_len].to_vec();
                if key.iter().any(|t| matches!(t, PatTerm::X(_))) {
                    return Err(CompileError(format!(
                        "Lemma 45 atom {} has a non-ground key",
                        step.n_atom
                    )));
                }
                CompiledTail::Lemma45(Box::new(CompiledLemma45 {
                    rel: step.n_atom.rel,
                    key,
                    pattern,
                    n_xs: step.xs.len(),
                    outgoing: step.outgoing.clone(),
                    sub,
                }))
            }
        };
        let compiled = CompiledPlan {
            schema: plan.problem.query().schema().clone(),
            rels,
            ops,
            tail,
            n_params: params.len(),
            join,
        };
        #[cfg(debug_assertions)]
        {
            let report = compiled.audit();
            debug_assert!(
                report.is_clean(),
                "compiled plan failed its IR audit:\n{report}"
            );
        }
        Ok(compiled)
    }

    /// Converts the compiled plan (and, recursively, its residual plans)
    /// into the neutral `cqa-analyze` IR.
    pub fn to_ir(&self) -> PlanIr {
        PlanIr {
            schema: self.schema.clone(),
            rels: self.rels.clone(),
            ops: self.ops.iter().map(CompiledOp::to_ir).collect(),
            tail: match &self.tail {
                CompiledTail::Kw { formula, free_map } => TailIr::Kw {
                    formula: formula.to_ir(),
                    free_map: free_map.clone(),
                },
                CompiledTail::Lemma45(l) => TailIr::Lemma45(Box::new(L45Ir {
                    rel: l.rel,
                    key: l.key.iter().copied().map(PatTerm::to_ir).collect(),
                    pattern: l.pattern.iter().copied().map(PatTerm::to_ir).collect(),
                    n_xs: l.n_xs,
                    outgoing: l.outgoing.clone(),
                    sub: l.sub.to_ir(),
                })),
            },
            n_params: self.n_params,
        }
    }

    /// Audits the compiled plan's IR invariants — schema conformance,
    /// parameter composition across nested Lemma 45 levels, ground probe
    /// keys, and every embedded formula and relevance query (see
    /// `cqa_analyze::checks`). Run behind `debug_assert!` at every compile;
    /// callable explicitly for reports (`cqa analyze`).
    pub fn audit(&self) -> AuditReport {
        cqa_analyze::audit_plan(&self.to_ir())
    }

    /// The statically inferred read-set: the exact (relation, block-key)
    /// pairs this plan can touch. Sound — any fact able to influence the
    /// answer lands in a covered block — and strictly tighter than
    /// [`CompiledPlan::reads`] whenever a Lemma 45 tail probes a ground
    /// key: there the block relation contributes `blocks {key}` instead of
    /// a whole-relation read, so the incremental solver can ignore deltas
    /// to that relation's *other* blocks.
    pub fn read_set(&self) -> ReadSet {
        cqa_analyze::readset::infer(&self.to_ir())
    }

    /// [`CompiledPlan::answer`] with every view probe recorded into `log` —
    /// the instrumentation side of the read-set soundness tests.
    pub fn answer_traced(&self, db: &Instance, log: &Arc<ReadLog>) -> bool {
        assert_eq!(self.n_params, 0, "tracing answers parameterless plans");
        let view = InstanceView::new(db).with_read_log(log.clone());
        self.eval(&view, &[], ParCtx::SEQUENTIAL)
    }

    /// Number of parameters this plan expects.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The join strategy the plan was compiled with.
    pub fn join_strategy(&self) -> JoinStrategy {
        self.join
    }

    /// Whether any level of the plan holds a compiled Yannakakis route an
    /// evaluation could take — a semijoin-eligible KW quantifier group, an
    /// acyclic filter-step relevance query, or a nested residual with
    /// either. Always `false` under [`JoinStrategy::Backtracking`], where
    /// the routes are not even compiled.
    pub fn uses_semijoin(&self) -> bool {
        if self.join == JoinStrategy::Backtracking {
            return false;
        }
        self.ops.iter().any(|op| match op {
            CompiledOp::FilterRelevant { relevance, .. } => relevance.semijoin_plan().is_some(),
            CompiledOp::FilterNonDangling { .. } => false,
        }) || match &self.tail {
            CompiledTail::Kw { formula, .. } => formula.uses_semijoin(),
            CompiledTail::Lemma45(l) => l.sub.uses_semijoin(),
        }
    }

    /// Total number of compiled levels (this plan plus nested Lemma 45
    /// residuals).
    pub fn depth(&self) -> usize {
        1 + match &self.tail {
            CompiledTail::Kw { .. } => 0,
            CompiledTail::Lemma45(l) => l.sub.depth(),
        }
    }

    /// Evaluates the plan: is `db` a yes-instance of `CERTAINTY(q, FK)`?
    /// Requires a parameterless plan.
    pub fn answer(&self, db: &Instance) -> bool {
        self.answer_with(db, &[])
    }

    /// Evaluates a parameterized plan under the given argument values (one
    /// per parameter, in [`CompiledPlan::compile_parameterized`] order).
    pub fn answer_with(&self, db: &Instance, args: &[Cst]) -> bool {
        assert_eq!(args.len(), self.n_params, "one argument per parameter");
        self.eval(&InstanceView::new(db), args, ParCtx::SEQUENTIAL)
    }

    /// Like [`CompiledPlan::answer`], with the filter-step block loops and
    /// the Lemma 45 block-fact fan-out sharded across threads per `policy`.
    /// Answers are identical to the sequential path by construction (see
    /// the module docs); a policy resolving to one thread, or work below
    /// the policy's threshold, runs inline.
    pub fn answer_parallel(&self, db: &Instance, policy: &ParallelPolicy) -> bool {
        self.answer_with_parallel(db, &[], policy)
    }

    /// The parameterized form of [`CompiledPlan::answer_parallel`].
    pub fn answer_with_parallel(
        &self,
        db: &Instance,
        args: &[Cst],
        policy: &ParallelPolicy,
    ) -> bool {
        assert_eq!(args.len(), self.n_params, "one argument per parameter");
        let pool = policy.pool();
        let ctx = if pool.threads() > 1 {
            ParCtx {
                pool: Some(&pool),
                policy: *policy,
            }
        } else {
            ParCtx::SEQUENTIAL
        };
        self.eval(&InstanceView::new(db), args, ctx)
    }

    /// The relations this plan may read, at any nesting level. Every level
    /// starts by restricting the incoming view to its own relation set, and
    /// residual levels receive an already-restricted view, so the top-level
    /// set is a sound overapproximation of everything the whole plan (ops
    /// predicates, non-dangling probes, tail formula, nested residuals)
    /// can observe. A delta confined to other relations cannot change the
    /// answer.
    pub fn reads(&self) -> &BTreeSet<RelName> {
        &self.rels
    }

    /// Delta-localization probe: `Some(rel)` when this parameterless plan
    /// is a bare Lemma 45 universal over one constant-keyed block of `rel`
    /// and `rel` is read **nowhere else** — no filter ops precede the tail,
    /// the residual plan never reads `rel`, and no foreign key of the step
    /// points back into `rel`. In that shape the plan reads `rel` only
    /// through `block_rows(rel, key)`, so a delta confined to `rel` can
    /// only change the answer through the rows of that one block, and each
    /// block fact's residual verdict depends on the fact's content plus the
    /// *untouched* rest of the database — exactly what
    /// [`CompiledPlan::answer_delta`] caches. `None` means deltas touching
    /// the plan's reads need a full re-answer (detected, never stale).
    pub fn localizable_rel(&self) -> Option<RelName> {
        if self.n_params != 0 || !self.ops.is_empty() {
            return None;
        }
        let CompiledTail::Lemma45(l) = &self.tail else {
            return None;
        };
        if l.key.iter().any(|t| !matches!(t, PatTerm::Cst(_))) {
            return None;
        }
        if l.sub.rels.contains(&l.rel) || l.outgoing.iter().any(|fk| fk.to == l.rel) {
            return None;
        }
        Some(l.rel)
    }

    /// Evaluates a [`CompiledPlan::localizable_rel`] plan through a
    /// [`ResidualCache`]: block facts whose content is cached reuse their
    /// residual verdict; only uncached facts (the delta's new rows, or rows
    /// an earlier early-exit never reached) evaluate the residual plan. The
    /// cheap per-call parts — block emptiness and the existential
    /// non-dangling witness — are re-run every time. Returns
    /// `(answer, reused, evaluated)`.
    ///
    /// # Panics
    /// If the plan is not localizable ([`CompiledPlan::localizable_rel`]
    /// returned `None`).
    pub fn answer_delta(&self, db: &Instance, cache: &mut ResidualCache) -> (bool, usize, usize) {
        self.localizable_rel()
            .expect("answer_delta requires a localizable plan");
        let CompiledTail::Lemma45(l) = &self.tail else {
            unreachable!("localizable plans have a Lemma 45 tail");
        };
        let view = InstanceView::new(db).restrict(&self.rels);
        l.eval_cached(&view, cache)
    }

    /// Evaluates over a view (already reduced by enclosing levels).
    fn eval(&self, base: &InstanceView<'_>, args: &[Cst], ctx: ParCtx<'_>) -> bool {
        let mut view = base.clone().restrict(&self.rels);
        for op in &self.ops {
            view = op.apply(view, args, ctx, self.join);
        }
        match &self.tail {
            CompiledTail::Kw { formula, free_map } => {
                let bound: Vec<Cst> = free_map.iter().map(|&i| args[i]).collect();
                formula.eval_params(&view, &bound)
            }
            CompiledTail::Lemma45(l) => l.eval(&view, args, ctx),
        }
    }
}

impl PatTerm {
    fn to_ir(self) -> PatIr {
        match self {
            PatTerm::Cst(c) => PatIr::Cst(c),
            PatTerm::Param(i) => PatIr::Param(i),
            PatTerm::X(k) => PatIr::X(k),
        }
    }
}

/// Compiles the terms of a (frozen) Lemma 45 atom into a match pattern.
fn compile_pattern(
    terms: &[Term],
    params: &[Var],
    xs: &[Var],
) -> Result<Vec<PatTerm>, CompileError> {
    terms
        .iter()
        .map(|t| match t {
            Term::Cst(c) => match c.as_param() {
                Some(v) => match params.iter().position(|&p| p == v) {
                    Some(i) => Ok(PatTerm::Param(i)),
                    None => Ok(PatTerm::Cst(*c)),
                },
                None => Ok(PatTerm::Cst(*c)),
            },
            Term::Var(v) => match xs.iter().position(|&x| x == *v) {
                Some(i) => Ok(PatTerm::X(i)),
                None => Err(CompileError(format!(
                    "variable {v} of a Lemma 45 atom is not in its binding"
                ))),
            },
        })
        .collect()
}

impl CompiledOp {
    fn to_ir(&self) -> OpIr {
        match self {
            CompiledOp::FilterRelevant {
                drop,
                filter,
                relevance,
                anchor,
            } => OpIr::FilterRelevant {
                drop: *drop,
                filter: *filter,
                relevance: QueryIr::from(relevance),
                anchor: *anchor,
            },
            CompiledOp::FilterNonDangling {
                drop,
                filter,
                outgoing,
            } => OpIr::FilterNonDangling {
                drop: *drop,
                filter: *filter,
                outgoing: outgoing.clone(),
            },
        }
    }

    /// Applies the step to the view: evaluates the block predicate over the
    /// *incoming* view (the reductions read the pre-step database), then
    /// hides the removed relation and installs the surviving-block filter.
    ///
    /// With a pool in `ctx` and enough blocks, the predicate loop shards:
    /// the filtered relation's blocks are partitioned into per-thread range
    /// views (an exact cover), each worker collects the surviving keys of
    /// its shard while matching rows against the whole incoming view, and
    /// the disjoint shard sets union into the same filter the sequential
    /// loop builds.
    fn apply<'a>(
        &self,
        view: InstanceView<'a>,
        args: &[Cst],
        ctx: ParCtx<'_>,
        join: JoinStrategy,
    ) -> InstanceView<'a> {
        let (drop, filter) = match self {
            CompiledOp::FilterRelevant { drop, filter, .. }
            | CompiledOp::FilterNonDangling { drop, filter, .. } => (*drop, *filter),
        };
        let survivors = |shard: &InstanceView<'a>| -> HashSet<Box<[Cst]>> {
            let mut keys: HashSet<Box<[Cst]>> = HashSet::new();
            match self {
                CompiledOp::FilterRelevant {
                    relevance, anchor, ..
                } => {
                    let mut matcher = relevance.anchored_matcher_via(*anchor, args, join);
                    for (key, rows) in shard.blocks(filter) {
                        if rows.iter().any(|row| matcher.matches(&view, row)) {
                            keys.insert(key.into());
                        }
                    }
                }
                CompiledOp::FilterNonDangling { outgoing, .. } => {
                    for (key, rows) in shard.blocks(filter) {
                        if rows.iter().any(|row| non_dangling(&view, row, outgoing)) {
                            keys.insert(key.into());
                        }
                    }
                }
            }
            keys
        };
        let keys = match ctx.fan(view.block_count(filter)) {
            Some(pool) => {
                let shards = view.partition(filter, pool.threads());
                let mut keys: HashSet<Box<[Cst]>> = HashSet::new();
                for shard_keys in pool.map(&shards, survivors) {
                    keys.extend(shard_keys);
                }
                keys
            }
            None => survivors(&view),
        };
        view.hide(drop).with_block_filter(filter, keys)
    }
}

/// Whether the row is non-dangling w.r.t. every key of `outgoing` in the
/// view (the referenced block is visible and non-empty).
fn non_dangling(view: &InstanceView<'_>, row: &[Cst], outgoing: &[ForeignKey]) -> bool {
    outgoing.iter().all(|fk| match row.get(fk.pos - 1) {
        Some(&v) => view.block_nonempty(fk.to, &[v]),
        None => false,
    })
}

/// A per-session cache of Lemma 45 residual verdicts for
/// [`CompiledPlan::answer_delta`], keyed by block-fact **content**: a fact
/// removed and later reinserted hits its old entry, and a fact that left
/// the block simply stops being consulted. Entries stay valid exactly as
/// long as the relations the residual plan reads are untouched — the
/// owning session ([`crate::IncrementalSolver`]) clears the cache whenever
/// a delta forces a full re-answer.
#[derive(Clone, Debug, Default)]
pub struct ResidualCache {
    rows: HashMap<Box<[Cst]>, bool>,
}

impl ResidualCache {
    /// An empty cache.
    pub fn new() -> ResidualCache {
        ResidualCache::default()
    }

    /// Drops every cached residual verdict.
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Number of cached residual verdicts.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl CompiledLemma45 {
    /// The cached form of [`CompiledLemma45::eval`] for localizable plans
    /// (parameterless, constant key): conjunction over the block's current
    /// rows with per-row memoization. Returns `(answer, reused, evaluated)`.
    fn eval_cached(
        &self,
        view: &InstanceView<'_>,
        cache: &mut ResidualCache,
    ) -> (bool, usize, usize) {
        let key: Vec<Cst> = self
            .key
            .iter()
            .map(|t| match t {
                PatTerm::Cst(c) => *c,
                _ => unreachable!("localizable keys are ground constants"),
            })
            .collect();
        let block = view.block_rows(self.rel, &key);
        if block.is_empty() {
            return (false, 0, 0);
        }
        if !block
            .iter()
            .any(|row| non_dangling(view, row, &self.outgoing))
        {
            return (false, 0, 0);
        }
        let mut xs_vals: Vec<Option<Cst>> = vec![None; self.n_xs];
        let mut sub_args: Vec<Cst> = Vec::with_capacity(self.n_xs);
        let (mut reused, mut evaluated) = (0, 0);
        for row in &block {
            let verdict = match cache.rows.get(*row) {
                Some(&v) => {
                    reused += 1;
                    v
                }
                None => {
                    evaluated += 1;
                    let v = self.eval_row(
                        view,
                        &[],
                        row,
                        &mut xs_vals,
                        &mut sub_args,
                        ParCtx::SEQUENTIAL,
                    );
                    cache.rows.insert((*row).into(), v);
                    v
                }
            };
            if !verdict {
                return (false, reused, evaluated);
            }
        }
        (true, reused, evaluated)
    }

    fn eval(&self, view: &InstanceView<'_>, args: &[Cst], ctx: ParCtx<'_>) -> bool {
        let key: Vec<Cst> = self
            .key
            .iter()
            .map(|t| match t {
                PatTerm::Cst(c) => *c,
                PatTerm::Param(i) => args[*i],
                PatTerm::X(_) => unreachable!("checked ground at compile time"),
            })
            .collect();
        let block = view.block_rows(self.rel, &key);
        if block.is_empty() {
            return false;
        }
        if !block
            .iter()
            .any(|row| non_dangling(view, row, &self.outgoing))
        {
            return false;
        }
        // The answer is a universal over the block facts, so the fan-out is
        // a short-circuiting parallel conjunction: each worker evaluates
        // its contiguous range of facts with per-worker slot buffers
        // (allocated once per worker, reused across its facts), and
        // residuals run sequentially inside the worker (the context is
        // spent here).
        if let Some(pool) = ctx.fan(block.len()) {
            return pool.all_init(
                &block,
                || {
                    (
                        vec![None; self.n_xs],
                        Vec::with_capacity(args.len() + self.n_xs),
                    )
                },
                |(xs_vals, sub_args): &mut (Vec<Option<Cst>>, Vec<Cst>), row| {
                    self.eval_row(view, args, row, xs_vals, sub_args, ParCtx::SEQUENTIAL)
                },
            );
        }
        let mut sub_args: Vec<Cst> = Vec::with_capacity(args.len() + self.n_xs);
        let mut xs_vals: Vec<Option<Cst>> = vec![None; self.n_xs];
        block
            .iter()
            .all(|row| self.eval_row(view, args, row, &mut xs_vals, &mut sub_args, ctx))
    }

    /// One block fact: match it against `N(⃗c, ⃗t)` (a repair may keep a
    /// non-matching fact of the block, falsifying q), extract `θ(⃗x)`, and
    /// evaluate the residual plan. `xs_vals` and `sub_args` are reusable
    /// caller buffers (cleared here).
    fn eval_row(
        &self,
        view: &InstanceView<'_>,
        args: &[Cst],
        row: &[Cst],
        xs_vals: &mut [Option<Cst>],
        sub_args: &mut Vec<Cst>,
        ctx: ParCtx<'_>,
    ) -> bool {
        xs_vals.iter_mut().for_each(|v| *v = None);
        for (i, t) in self.pattern.iter().enumerate() {
            let cell = row[i];
            let ok = match t {
                PatTerm::Cst(c) => cell == *c,
                PatTerm::Param(p) => cell == args[*p],
                PatTerm::X(k) => match xs_vals[*k] {
                    None => {
                        xs_vals[*k] = Some(cell);
                        true
                    }
                    Some(prev) => prev == cell,
                },
            };
            if !ok {
                return false;
            }
        }
        sub_args.clear();
        sub_args.extend_from_slice(args);
        sub_args.extend(xs_vals.iter().map(|v| v.expect("⃗x covers the atom")));
        self.sub.eval(view, sub_args, ctx)
    }
}

impl fmt::Display for CompiledPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compiled plan over {:?}: {} filter op(s), ",
            self.rels,
            self.ops.len()
        )?;
        match &self.tail {
            CompiledTail::Kw { formula, .. } => {
                write!(f, "KW tail ({} params)", formula.free_vars().count())
            }
            CompiledTail::Lemma45(l) => {
                write!(f, "Lemma 45 on {} ⊳ [{}]", l.rel, l.sub)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    fn compiled(schema: &str, query: &str, fks: &str) -> (RewritePlan, CompiledPlan) {
        let s = Arc::new(parse_schema(schema).unwrap());
        let q = parse_query(&s, query).unwrap();
        let k = parse_fks(&s, fks).unwrap();
        let plan = RewritePlan::build(&Problem::new(q, k).unwrap()).unwrap();
        let compiled = CompiledPlan::compile(&plan).unwrap();
        (plan, compiled)
    }

    fn agree_on(schema: &str, query: &str, fks: &str, instances: &[&str]) {
        let (plan, compiled) = compiled(schema, query, fks);
        let s = Arc::new(parse_schema(schema).unwrap());
        for text in instances {
            let db = parse_instance(&s, text).unwrap();
            assert_eq!(
                plan.answer(&db),
                compiled.answer(&db),
                "query {query}, fks {fks}, instance {text}"
            );
        }
    }

    #[test]
    fn section8_example_matches_interpreter() {
        agree_on(
            "N[2,1] O[1,1] P[1,1]",
            "N('c',y), O(y), P(y)",
            "N[2] -> O",
            &[
                "N(c,a) N(c,b) O(a) P(a) P(b)",
                "N(c,a) N(c,b) O(a) P(b)",
                "N(c,a) N(c,b) O(a) P(a)",
                "N(c,a) N(c,b) P(a) P(b)",
                "O(a) P(a)",
                "",
            ],
        );
    }

    #[test]
    fn lemma37_block_filtering_matches_interpreter() {
        agree_on(
            "N[3,1] O[2,1]",
            "N(x,u,y), O(y,w)",
            "N[3] -> O",
            &[
                "N(c,1,a) N(c,2,b) O(a,3)",
                "N(c,1,a) O(a,3)",
                "N(c,1,a)",
                "O(a,3)",
                "N(k,1,a) N(k,2,a) N(j,1,b) O(a,1) O(b,2)",
                "",
            ],
        );
    }

    #[test]
    fn lemma40_filtering_matches_interpreter() {
        agree_on(
            "N[2,1] O[1,1] T[2,1] U[2,1]",
            "N(x,y), O(y), T(z,y), U(z,y)",
            "N[2] -> O",
            &[
                "N(a,b) O(b) T(t,b) U(t,b)",
                "N(a,b) T(t,b) U(t,b)",
                "N(a,b) O(b) T(t,b) U(t,zz)",
                "N(a,b) N(a,c) O(b) O(c) T(t,b) U(t,b) T(s,c) U(s,c)",
                "",
            ],
        );
    }

    #[test]
    fn nested_lemma45_depth_two() {
        // N('c',y) binds y; the frozen residual M(§y,w) binds w; the final
        // tail is the KW rewriting of P(§w). Exercises parameters in key
        // position at the second level.
        let (plan, compiled) = compiled(
            "N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]",
            "N('c',y), M(y,w), Q(w), P(w), O(y)",
            "N[2] -> O, M[2] -> Q",
        );
        assert_eq!(compiled.depth(), 3);
        assert_eq!(compiled.to_string().matches("Lemma 45").count(), 2);
        let s =
            Arc::new(parse_schema("N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]").unwrap());
        for text in [
            "N(c,y0) O(y0) M(y0,w0) Q(w0) P(w0)",
            "N(c,y0) O(y0) M(y0,w0) Q(w0)",
            "N(c,y0) O(y0) M(y0,w0) P(w0)",
            "N(c,y0) N(c,y1) O(y0) M(y0,w0) Q(w0) P(w0) M(y1,w1) Q(w1) P(w1)",
            "N(c,y0) N(c,y1) O(y0) M(y0,w0) Q(w0) P(w0) M(y1,w1) Q(w1)",
            "N(c,y0) M(y0,w0) Q(w0) P(w0)",
            "N(c,y0) O(y0) M(y0,w0) M(y0,w1) Q(w0) Q(w1) P(w0) P(w1)",
            "N(c,y0) O(y0) M(y0,w0) M(y0,w1) Q(w0) P(w0) P(w1)",
            "",
        ] {
            let db = parse_instance(&s, text).unwrap();
            assert_eq!(
                plan.answer(&db),
                compiled.answer(&db),
                "instance {text}"
            );
        }
    }

    #[test]
    fn parameterized_compile_matches_grounded_plans() {
        // Compile q = {R(x,u), S(x)} (weak key R[1]→S) with u as a
        // parameter; the parameterized plan under u := v must agree with
        // the plan built for each grounded query.
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let q = parse_query(&s, "R(x,u), S(x)").unwrap();
        let fks = parse_fks(&s, "R[1] -> S").unwrap();
        let u = Var::new("u");
        let frozen = q.freeze(&[u].into_iter().collect());
        let plan = RewritePlan::build(&Problem::new(frozen, fks.clone()).unwrap()).unwrap();
        let compiled = CompiledPlan::compile_parameterized(&plan, &[u]).unwrap();
        assert_eq!(compiled.n_params(), 1);

        for val in ["1", "k", "zzz"] {
            let grounded = parse_query(&s, &format!("R(x,'{val}'), S(x)")).unwrap();
            let gplan =
                RewritePlan::build(&Problem::new(grounded, fks.clone()).unwrap()).unwrap();
            for text in [
                "R(a,1) S(a)",
                "R(a,k) S(a)",
                "R(a,1) R(a,k) S(a)",
                "R(a,1) R(b,k) S(a) S(b)",
                "R(a,zzz)",
                "",
            ] {
                let db = parse_instance(&s, text).unwrap();
                assert_eq!(
                    gplan.answer(&db),
                    compiled.answer_with(&db, &[Cst::new(val)]),
                    "u := {val}, instance {text}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_across_widths_and_thresholds() {
        // Depth-2 nested Lemma 45 with enough block facts to clear any
        // threshold; sweeps widths (1 = inline) and fan-out thresholds
        // (1 = always fan, large = never fan) on yes- and no-instances.
        let (plan, compiled) = compiled(
            "N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]",
            "N('c',y), M(y,w), Q(w), P(w), O(y)",
            "N[2] -> O, M[2] -> Q",
        );
        let s = Arc::new(parse_schema("N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]").unwrap());
        let mut yes = String::new();
        for i in 0..24 {
            yes.push_str(&format!("N(c,y{i}) O(y{i}) M(y{i},w{i}) Q(w{i}) P(w{i}) "));
        }
        let no = format!("{yes} M(y7,wx) Q(wx)"); // second M-block fact breaks y7's chain
        for text in [yes.as_str(), no.as_str(), ""] {
            let db = parse_instance(&s, text).unwrap();
            let expected = compiled.answer(&db);
            assert_eq!(plan.answer(&db), expected, "oracle agrees on {text}");
            for threads in [1usize, 2, 3, 8] {
                for min_units in [1usize, 4, usize::MAX] {
                    let policy = ParallelPolicy::with_threads(threads).fan_out_at(min_units);
                    assert_eq!(
                        compiled.answer_parallel(&db, &policy),
                        expected,
                        "threads={threads} min_units={min_units} on {} facts",
                        db.len()
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_filter_steps_match_sequential() {
        // Lemma 37 + Lemma 40 shapes with many blocks, so the partitioned
        // filter loops actually engage (min_units = 1).
        for (schema, query, fks) in [
            ("N[3,1] O[2,1]", "N(x,u,y), O(y,w)", "N[3] -> O"),
            (
                "N[2,1] O[1,1] T[2,1] U[2,1]",
                "N(x,y), O(y), T(z,y), U(z,y)",
                "N[2] -> O",
            ),
        ] {
            let (plan, compiled) = compiled(schema, query, fks);
            let s = Arc::new(parse_schema(schema).unwrap());
            let mut text = String::new();
            for i in 0..20 {
                match schema.starts_with("N[3") {
                    true => text.push_str(&format!("N(k{i},1,a{i}) O(a{i},3) ")),
                    false => text.push_str(&format!("N(a{i},b{i}) O(b{i}) T(t{i},b{i}) U(t{i},b{i}) ")),
                }
            }
            let db = parse_instance(&s, &text).unwrap();
            let expected = plan.answer(&db);
            let policy = ParallelPolicy::with_threads(4).fan_out_at(1);
            assert_eq!(compiled.answer_parallel(&db, &policy), expected, "{query}");
        }
    }

    #[test]
    fn compiled_artifacts_are_shareable_across_threads() {
        // The fan-out shares the plan and the views by reference.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledPlan>();
        assert_send_sync::<ParallelPolicy>();
    }

    #[test]
    fn join_strategies_agree_on_compiled_plans() {
        let cases: [(&str, &str, &str, &[&str]); 3] = [
            (
                "N[2,1] O[1,1] P[1,1]",
                "N('c',y), O(y), P(y)",
                "N[2] -> O",
                &[
                    "N(c,a) N(c,b) O(a) P(a) P(b)",
                    "N(c,a) N(c,b) O(a) P(b)",
                    "",
                ],
            ),
            (
                "N[3,1] O[2,1]",
                "N(x,u,y), O(y,w)",
                "N[3] -> O",
                &[
                    "N(c,1,a) N(c,2,b) O(a,3)",
                    "N(k,1,a) N(k,2,a) N(j,1,b) O(a,1) O(b,2)",
                    "",
                ],
            ),
            (
                "N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]",
                "N('c',y), M(y,w), Q(w), P(w), O(y)",
                "N[2] -> O, M[2] -> Q",
                &[
                    "N(c,y0) O(y0) M(y0,w0) Q(w0) P(w0)",
                    "N(c,y0) O(y0) M(y0,w0) Q(w0)",
                    "N(c,y0) N(c,y1) O(y0) M(y0,w0) Q(w0) P(w0) M(y1,w1) Q(w1)",
                    "",
                ],
            ),
        ];
        let strategies = [
            JoinStrategy::Auto,
            JoinStrategy::Backtracking,
            JoinStrategy::Semijoin,
        ];
        for (schema, query, fks, instances) in cases {
            let s = Arc::new(parse_schema(schema).unwrap());
            let q = parse_query(&s, query).unwrap();
            let k = parse_fks(&s, fks).unwrap();
            let plan = RewritePlan::build(&Problem::new(q, k).unwrap()).unwrap();
            let compiled: Vec<CompiledPlan> = strategies
                .into_iter()
                .map(|j| CompiledPlan::compile_with(&plan, j).unwrap())
                .collect();
            assert!(!compiled[1].uses_semijoin(), "{query}");
            for text in instances {
                let db = parse_instance(&s, text).unwrap();
                let expected = plan.answer(&db);
                for (j, c) in strategies.iter().zip(&compiled) {
                    assert_eq!(c.join_strategy(), *j);
                    assert_eq!(c.answer(&db), expected, "join {j} on {text}");
                }
            }
        }
    }

    #[test]
    fn non_query_relations_are_ignored() {
        // Facts over relations outside q must not influence the answer.
        let s = Arc::new(parse_schema("N[2,1] O[1,1] Z[1,1]").unwrap());
        let q = parse_query(&s, "N(x,y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        let plan = RewritePlan::build(&Problem::new(q, fks).unwrap()).unwrap();
        let compiled = CompiledPlan::compile(&plan).unwrap();
        let db = parse_instance(&s, "N(a,b) O(b) Z(junk)").unwrap();
        assert_eq!(plan.answer(&db), compiled.answer(&db));
        assert!(compiled.answer(&db));
    }
}
