//! The unified, dichotomy-aware solver: one entry point that routes every
//! `CERTAINTY(q, FK)` problem to its best backend.
//!
//! The paper's classification is a *trichotomy* in practice: a problem is
//! FO-rewritable (Theorem 12 case 1), polynomial-time decidable through a
//! combinatorial reduction (the Proposition 16/17 shapes), or hard — and
//! the crate historically served only the first class, with
//! [`crate::CertainEngine::try_new`] abandoning every caller it answered
//! `Err` to. [`Solver`] closes the gap: [`SolverBuilder::build`] classifies
//! **once** and compiles a [`Route`]:
//!
//! * [`Route::FoPlan`] — the consistent FO rewriting, executed through the
//!   view-backed [`CompiledPlan`] (or the materializing interpreter when
//!   [`ExecOptions::evaluator`] asks for it);
//! * [`Route::PolyTime`] — a pre-bound dual-Horn / reachability
//!   [`Backend`] for problems isomorphic (up to renaming) to the paper's
//!   Proposition 16 or 17;
//! * [`Route::Fallback`] — the budgeted exhaustive ⊕-repair oracle for the
//!   remaining hard class, **opt-in** via [`ExecOptions::fallback`] and
//!   honest about exhaustion: it answers [`Certainty::Inconclusive`]
//!   instead of silently brute-forcing past its budget.
//!
//! All answering goes through [`Solver::solve`] (one typed [`Verdict`]
//! carrying provenance) and [`Solver::solve_many`] (a lazy, input-ordered
//! iterator that internally batches and — on the FO and poly-time routes —
//! shards each chunk through the PR 4 thread-pool machinery; the fallback
//! route stays sequential, since per-instance oracle search dominates and
//! its verdicts carry per-instance diagnostics).
//!
//! ```
//! use cqa_core::{BackendKind, Problem, Solver};
//! use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
//! use std::sync::Arc;
//!
//! // FO-rewritable (§8's query): routed to the compiled plan.
//! let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
//! let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
//! let fks = parse_fks(&s, "N[2] -> O").unwrap();
//! let solver = Solver::new(Problem::new(q, fks).unwrap()).unwrap();
//! let db = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
//! let verdict = solver.solve(&db);
//! assert!(verdict.is_certain());
//! assert_eq!(verdict.provenance.backend, BackendKind::CompiledPlan);
//!
//! // NL-complete (Proposition 16, relations renamed): routed to
//! // reachability — the same call site, no per-class plumbing.
//! let s = Arc::new(parse_schema("E[2,1] V[1,1]").unwrap());
//! let q = parse_query(&s, "E(x,x), V(x)").unwrap();
//! let fks = parse_fks(&s, "E[2] -> V").unwrap();
//! let solver = Solver::new(Problem::new(q, fks).unwrap()).unwrap();
//! let db = parse_instance(&s, "E(a,a) V(a)").unwrap();
//! assert_eq!(solver.solve(&db).provenance.backend, BackendKind::Reachability);
//! assert_eq!(solver.solve(&db).as_bool(), Some(true));
//! ```

use crate::classify::{classify, Classification, NotFoReason};
use crate::compiled_plan::{CompiledPlan, ResidualCache};
use crate::flatten::{flatten, FlattenError};
use crate::parallel::ParallelPolicy;
use crate::pipeline::RewritePlan;
use crate::problem::Problem;
use crate::verdict::{BackendKind, Certainty, DeltaOutcome, Provenance, Verdict};
use cqa_analyze::ReadSet;
use cqa_fo::Formula;
use cqa_model::schema::RelName;
use cqa_model::{Cst, Delta, Instance, JoinStrategy, ModelError};
use cqa_repair::{CertaintyOracle, OracleOutcome, SearchLimits};
use cqa_solvers::backend::{Backend, DualHornBackend, ReachabilityBackend};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::time::Instant;

/// Which FO evaluator the solver should execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Evaluator {
    /// The view-backed [`CompiledPlan`] (zero intermediate
    /// materializations; the hot path). Falls back to the interpreter if
    /// the plan does not compile.
    Compiled,
    /// The interpretive, materializing [`RewritePlan`] — the differential
    /// oracle, occasionally useful for debugging.
    Materialized,
}

/// Whether (and with how much budget) the hard class may fall back to the
/// exhaustive ⊕-repair oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackBudget {
    /// Hard problems are rejected at [`SolverBuilder::build`] time with
    /// [`SolverError::HardWithoutFallback`] (the default: nobody
    /// brute-forces by accident).
    Deny,
    /// Hard problems route to the oracle under these limits; exhausting
    /// them yields [`Certainty::Inconclusive`].
    Allow(SearchLimits),
}

/// Typed execution options for the unified solver — one struct folding the
/// knobs that used to be scattered across [`ParallelPolicy`] parameters,
/// the `CQA_THREADS` environment variable, the compiled-vs-materialized
/// engine split and the oracle's search limits.
///
/// `CQA_THREADS` and `CQA_EVALUATOR` are consulted exactly **once**, in
/// [`ExecOptions::default`]; every later use of the options reads the
/// resolved [`ExecOptions::threads`] and [`ExecOptions::join`] fields.
/// (The pre-solver surfaces re-parsed the environment on every call.)
///
/// ```
/// use cqa_core::{ExecOptions, FallbackBudget};
/// use cqa_repair::SearchLimits;
///
/// let opts = ExecOptions {
///     threads: 4,
///     fallback: FallbackBudget::Allow(SearchLimits::budgeted(10_000)),
///     ..ExecOptions::default()
/// };
/// // The resolved policy clamps the requested width to the machine's
/// // availability, so it never exceeds the stored cap.
/// assert_eq!(opts.threads, 4);
/// assert!(opts.policy().threads() <= 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker-thread width for sharded execution (batch sharding in
    /// [`Solver::solve_many`], block-loop sharding inside the compiled
    /// plan). `1` disables fan-out. Resolved from `CQA_THREADS` (else
    /// available parallelism) once at construction — never `0`.
    pub threads: usize,
    /// Minimum work units (instances in a batch, blocks in a filter loop)
    /// before fanning out; below it the sequential path runs.
    pub min_parallel_units: usize,
    /// Which FO evaluator to execute on [`Route::FoPlan`].
    pub evaluator: Evaluator,
    /// How the compiled FO evaluator executes acyclic residual
    /// conjunctions: Yannakakis semijoin passes, backtracking search, or a
    /// per-site cardinality heuristic ([`JoinStrategy::Auto`]). Resolved
    /// from `CQA_EVALUATOR` once at construction, like
    /// [`ExecOptions::threads`].
    pub join: JoinStrategy,
    /// Opt-in budget for the hard-class fallback route.
    pub fallback: FallbackBudget,
}

impl Default for ExecOptions {
    /// Compiled evaluator, no fallback, environment-resolved width — the
    /// one place `CQA_THREADS` is read.
    fn default() -> ExecOptions {
        ExecOptions {
            threads: ParallelPolicy::default().threads(),
            min_parallel_units: ParallelPolicy::default().min_units,
            evaluator: Evaluator::Compiled,
            join: JoinStrategy::from_env(),
            fallback: FallbackBudget::Deny,
        }
    }
}

impl ExecOptions {
    /// Fully sequential execution: one thread, never fan out. (Also what
    /// benchmark baselines use, so facade overhead is measured against the
    /// same single-threaded plan execution.)
    pub fn sequential() -> ExecOptions {
        ExecOptions {
            threads: 1,
            min_parallel_units: usize::MAX,
            ..ExecOptions::default()
        }
    }

    /// Replaces the worker width (builder style). `0` re-resolves from the
    /// environment, mirroring [`ParallelPolicy::with_threads`].
    pub fn with_threads(mut self, threads: usize) -> ExecOptions {
        self.threads = match threads {
            0 => ParallelPolicy::default().threads(),
            n => n,
        };
        self
    }

    /// Replaces the join strategy for acyclic residual conjunctions
    /// (builder style).
    pub fn with_join(mut self, join: JoinStrategy) -> ExecOptions {
        self.join = join;
        self
    }

    /// Enables the hard-class fallback under `limits` (builder style).
    pub fn with_fallback(mut self, limits: SearchLimits) -> ExecOptions {
        self.fallback = FallbackBudget::Allow(limits);
        self
    }

    /// Enables the hard-class fallback with default oracle limits.
    pub fn allow_fallback(self) -> ExecOptions {
        self.with_fallback(SearchLimits::default())
    }

    /// The resolved sharding policy: `max_threads` is pinned (non-zero),
    /// so consumers never re-read the environment.
    pub fn policy(&self) -> ParallelPolicy {
        ParallelPolicy {
            min_units: self.min_parallel_units,
            max_threads: self.threads.max(1),
        }
    }
}

/// Why a [`Solver`] could not be built.
#[derive(Debug)]
pub enum SolverError {
    /// The problem is in the hard class (not FO-rewritable and not
    /// isomorphic to a known polynomial-time shape), and
    /// [`ExecOptions::fallback`] denies the exhaustive oracle. The
    /// Theorem 12 hardness witnesses are attached; opt in with
    /// [`ExecOptions::with_fallback`] to solve anyway under a budget.
    HardWithoutFallback(NotFoReason),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::HardWithoutFallback(reason) => write!(
                f,
                "problem is in the hard class ({reason}); enable ExecOptions::fallback \
                 to solve it anyway under an oracle budget"
            ),
        }
    }
}

impl std::error::Error for SolverError {}

/// The FO route: the rewrite plan and (usually) its compiled executor.
#[derive(Clone, Debug)]
pub struct FoRoute {
    plan: RewritePlan,
    compiled: Option<CompiledPlan>,
    depth: usize,
}

impl FoRoute {
    /// The rewrite plan.
    pub fn plan(&self) -> &RewritePlan {
        &self.plan
    }

    /// The compiled executor, when available under the chosen evaluator.
    pub fn compiled(&self) -> Option<&CompiledPlan> {
        self.compiled.as_ref()
    }
}

/// The polynomial-time route: a pre-bound combinatorial backend, plus the
/// renaming it was matched under (which relations play the paper's `N` and
/// `O`, and — for Proposition 17 — which constant plays `c`). The renaming
/// is what artifact emission (`cqa-emit`) re-reads to lower the route into
/// Datalog/SQL without re-deriving the shape match.
pub struct PolyRoute {
    backend: Box<dyn Backend>,
    kind: BackendKind,
    n: RelName,
    o: RelName,
    middle: Option<Cst>,
}

impl PolyRoute {
    /// The backend adapter.
    pub fn backend(&self) -> &dyn Backend {
        self.backend.as_ref()
    }

    /// Which backend family this is.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// The relation playing the paper's `N` (the FK source).
    pub fn n(&self) -> RelName {
        self.n
    }

    /// The relation playing the paper's `O` (the FK target).
    pub fn o(&self) -> RelName {
        self.o
    }

    /// The constant playing Proposition 17's `'c'` (middle position);
    /// `None` on the reachability route.
    pub fn middle(&self) -> Option<&Cst> {
        self.middle.as_ref()
    }
}

impl fmt::Debug for PolyRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolyRoute")
            .field("backend", &self.backend.name())
            .field("kind", &self.kind)
            .finish()
    }
}

/// The hard-class route: the budgeted exhaustive oracle.
#[derive(Clone, Debug)]
pub struct FallbackRoute {
    oracle: CertaintyOracle,
    reason: NotFoReason,
}

impl FallbackRoute {
    /// The budgeted oracle.
    pub fn oracle(&self) -> &CertaintyOracle {
        &self.oracle
    }

    /// The Theorem 12 hardness witnesses that put the problem here.
    pub fn reason(&self) -> &NotFoReason {
        &self.reason
    }
}

/// The compiled routing decision: which backend answers this problem.
#[derive(Debug)]
pub enum Route {
    /// FO-rewritable (Theorem 12 case 1; boxed — a plan carries its
    /// compiled executor and dwarfs the other variants).
    FoPlan(Box<FoRoute>),
    /// Polynomial-time via a combinatorial reduction (Proposition 16/17
    /// shapes, up to renaming).
    PolyTime(PolyRoute),
    /// Hard class, answered by the budgeted oracle (opt-in).
    Fallback(FallbackRoute),
}

/// A copyable tag for [`Route`] variants (handy in tests and provenance
/// assertions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteKind {
    /// [`Route::FoPlan`].
    Fo,
    /// [`Route::PolyTime`].
    PolyTime,
    /// [`Route::Fallback`].
    Fallback,
}

/// Everything an external artifact emitter needs to lower a compiled route
/// into a self-contained program (Datalog, SQL, …) — the route's *logical*
/// content, independent of the in-process executors. Produced by
/// [`Solver::emit_spec`]; consumed by `cqa-emit`.
#[derive(Clone, Debug)]
pub enum EmitSpec {
    /// The FO route: the consistent rewriting flattened into one closed
    /// formula (proven equivalent to the plan's answer), plus the plan
    /// depth for provenance.
    Fo {
        /// The flattened closed rewriting.
        formula: Formula,
        /// Lemma 45 nesting depth of the source plan.
        depth: usize,
    },
    /// The Proposition 16 route: certainty is non-escape reachability over
    /// the block graph of `n`, with `o` marking the goal facts.
    Reachability {
        /// The relation playing the paper's `N`.
        n: RelName,
        /// The relation playing the paper's `O`.
        o: RelName,
    },
    /// The Proposition 17 route: certainty is the least model of the
    /// flipped dual-Horn program over `n`'s blocks (middle constant
    /// `middle`), with `o` marking the goal facts.
    DualHorn {
        /// The relation playing the paper's `N`.
        n: RelName,
        /// The relation playing the paper's `O`.
        o: RelName,
        /// The constant playing the paper's `'c'`.
        middle: Cst,
    },
}

/// Why a route has no emittable specification.
#[derive(Debug)]
pub enum EmitSpecError {
    /// The problem routed to the budgeted oracle: the hard class has no
    /// polynomial-size Datalog/SQL rendering (under standard complexity
    /// assumptions), so there is nothing to emit.
    FallbackOnly,
    /// The FO plan could not be flattened into one closed formula.
    Flatten(FlattenError),
}

impl fmt::Display for EmitSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitSpecError::FallbackOnly => write!(
                f,
                "the problem routed to the budgeted oracle; hard-class \
                 certainty has no emittable Datalog/SQL rendering"
            ),
            EmitSpecError::Flatten(e) => write!(f, "flattening the FO plan failed: {e}"),
        }
    }
}

impl std::error::Error for EmitSpecError {}

impl From<FlattenError> for EmitSpecError {
    fn from(e: FlattenError) -> EmitSpecError {
        EmitSpecError::Flatten(e)
    }
}

impl Route {
    /// This route's tag.
    pub fn kind(&self) -> RouteKind {
        match self {
            Route::FoPlan(_) => RouteKind::Fo,
            Route::PolyTime(_) => RouteKind::PolyTime,
            Route::Fallback(_) => RouteKind::Fallback,
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Route::FoPlan(r) => write!(
                f,
                "FO → {} (plan depth {})",
                if r.compiled.is_some() {
                    "compiled plan"
                } else {
                    "materialized plan"
                },
                r.depth
            ),
            Route::PolyTime(r) => write!(f, "poly-time → {}", r.backend.name()),
            Route::Fallback(r) => write!(f, "hard → budgeted oracle ({})", r.reason),
        }
    }
}

/// Builder for [`Solver`]: attach [`ExecOptions`], then [`build`] to
/// classify the problem once and compile its route.
///
/// [`build`]: SolverBuilder::build
#[derive(Debug)]
pub struct SolverBuilder {
    problem: Problem,
    options: ExecOptions,
}

impl SolverBuilder {
    /// Replaces the execution options (the default is
    /// [`ExecOptions::default`]).
    pub fn options(mut self, options: ExecOptions) -> SolverBuilder {
        self.options = options;
        self
    }

    /// Classifies the problem (Theorem 12), compiles the best route, and
    /// returns the ready solver. Classification, shape matching and plan
    /// compilation all happen here, exactly once; [`Solver::solve`] is
    /// pure dispatch.
    pub fn build(self) -> Result<Solver, SolverError> {
        let route = match classify(&self.problem) {
            Classification::Fo(plan) => {
                let compiled = match self.options.evaluator {
                    Evaluator::Compiled => {
                        CompiledPlan::compile_with(&plan, self.options.join).ok()
                    }
                    Evaluator::Materialized => None,
                };
                let depth = plan.depth();
                Route::FoPlan(Box::new(FoRoute {
                    plan: *plan,
                    compiled,
                    depth,
                }))
            }
            Classification::NotFo(reason) => match poly_backend(&self.problem) {
                Some(route) => Route::PolyTime(route),
                None => match self.options.fallback {
                    FallbackBudget::Allow(limits) => Route::Fallback(FallbackRoute {
                        oracle: CertaintyOracle::with_limits(limits),
                        reason,
                    }),
                    FallbackBudget::Deny => {
                        return Err(SolverError::HardWithoutFallback(reason))
                    }
                },
            },
        };
        Ok(Solver {
            problem: self.problem,
            options: self.options,
            route,
        })
    }
}

/// Matches problems isomorphic (up to renaming of relations, variables and
/// the Proposition 17 middle constant) to the paper's polynomial-time
/// shapes, returning the pre-bound backend.
fn poly_backend(problem: &Problem) -> Option<PolyRoute> {
    let q = problem.query();
    let fks = problem.fks();
    if q.len() != 2 || fks.len() != 1 {
        return None;
    }
    let fk = *fks.iter().next().expect("len checked");
    if fk.from == fk.to {
        return None;
    }
    let o_sig = q.sig(fk.to);
    if o_sig.arity != 1 || o_sig.key_len != 1 {
        return None;
    }
    let n_atom = q.atom(fk.from)?;
    let o_atom = q.atom(fk.to)?;
    let o_var = o_atom.terms[0].as_var()?;
    let n_sig = q.sig(fk.from);
    match (n_sig.arity, n_sig.key_len, fk.pos) {
        // Proposition 16: q = {N(x,x), O(x)}, FK = {N[2]→O}.
        (2, 1, 2) => {
            let x = n_atom.terms[0].as_var()?;
            let y = n_atom.terms[1].as_var()?;
            (x == y && x == o_var).then(|| PolyRoute {
                backend: Box::new(ReachabilityBackend::new(fk.from, fk.to)),
                kind: BackendKind::Reachability,
                n: fk.from,
                o: fk.to,
                middle: None,
            })
        }
        // Proposition 17: q = {N(x,'c',y), O(y)}, FK = {N[3]→O}.
        (3, 1, 3) => {
            let x = n_atom.terms[0].as_var()?;
            let c = n_atom.terms[1].as_cst()?;
            let y = n_atom.terms[2].as_var()?;
            (x != y && y == o_var).then(|| PolyRoute {
                backend: Box::new(DualHornBackend::new(fk.from, fk.to, c)),
                kind: BackendKind::DualHorn,
                n: fk.from,
                o: fk.to,
                middle: Some(c),
            })
        }
        _ => None,
    }
}

/// The unified, dichotomy-aware solver: accepts **any** valid
/// `CERTAINTY(q, FK)` problem, classifies it once at construction, and
/// answers every instance through the fastest sound backend. See the
/// [module docs](self) for the routing table and a cross-class example.
#[derive(Debug)]
pub struct Solver {
    problem: Problem,
    options: ExecOptions,
    route: Route,
}

impl Solver {
    /// Starts a builder with default [`ExecOptions`].
    pub fn builder(problem: Problem) -> SolverBuilder {
        SolverBuilder {
            problem,
            options: ExecOptions::default(),
        }
    }

    /// Builds with default options — shorthand for
    /// `Solver::builder(problem).build()`.
    pub fn new(problem: Problem) -> Result<Solver, SolverError> {
        Solver::builder(problem).build()
    }

    /// The problem this solver answers.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The execution options in force.
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// The compiled routing decision.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// The route's logical content for external artifact emission: the
    /// flattened rewriting on the FO route, the `(N, O[, c])` renaming on
    /// the poly-time routes. [`EmitSpecError::FallbackOnly`] on the hard
    /// class — the oracle's exhaustive search has no program rendering.
    pub fn emit_spec(&self) -> Result<EmitSpec, EmitSpecError> {
        match &self.route {
            Route::FoPlan(r) => Ok(EmitSpec::Fo {
                formula: flatten(&r.plan)?,
                depth: r.depth,
            }),
            Route::PolyTime(r) => Ok(match r.middle() {
                None => EmitSpec::Reachability { n: r.n(), o: r.o() },
                Some(c) => EmitSpec::DualHorn {
                    n: r.n(),
                    o: r.o(),
                    middle: *c,
                },
            }),
            Route::Fallback(_) => Err(EmitSpecError::FallbackOnly),
        }
    }

    /// Is `db` a yes-instance of `CERTAINTY(q, FK)`? One dispatch on the
    /// pre-compiled route; the verdict carries backend, timing and plan
    /// provenance.
    pub fn solve(&self, db: &Instance) -> Verdict {
        self.solve_with(db, &self.options)
    }

    /// [`Solver::solve`] under **caller-supplied execution options** — the
    /// per-request surface a long-lived service needs: one cached, shared
    /// solver (classification and plan compilation amortized across every
    /// request) while each request pins its own sharding width and, on the
    /// fallback route, its own oracle budget. The *compiled* choices —
    /// evaluator and join strategy — are baked into the route at
    /// [`SolverBuilder::build`] time and are **not** re-read from
    /// `options`; a caller that needs a differently compiled route builds
    /// (or cache-keys) a different solver.
    pub fn solve_with(&self, db: &Instance, options: &ExecOptions) -> Verdict {
        let start = Instant::now();
        let (certainty, backend, detail) = self.decide_with(db, options);
        Verdict {
            certainty,
            provenance: Provenance {
                backend,
                elapsed: start.elapsed(),
                batch: 1,
                plan_depth: self.plan_depth(),
                join: self.join_provenance(),
                delta: None,
                detail,
            },
        }
    }

    /// The join strategy recorded in [`Provenance`]: the strategy the
    /// compiled FO plan was built with when that route runs, `None` for
    /// every other backend (no compiled relational join executes there).
    fn join_provenance(&self) -> Option<JoinStrategy> {
        match &self.route {
            Route::FoPlan(r) if r.compiled.is_some() => Some(self.options.join),
            _ => None,
        }
    }

    /// Opens an incremental **delta-certainty** session over this solver:
    /// answer once, then [`IncrementalSolver::reanswer`] after each
    /// [`Delta`] — reusing the prior verdict when the delta provably cannot
    /// change it, re-evaluating only the touched block when the plan is
    /// Δ-localizable, and falling back to a full from-scratch solve
    /// whenever neither holds. Correctness first: a stale verdict is never
    /// returned, and every reuse decision is recorded in
    /// [`Provenance::delta`].
    pub fn incremental(&self) -> IncrementalSolver<'_> {
        let mut reads: BTreeSet<RelName> = self
            .problem
            .query()
            .atoms()
            .iter()
            .map(|a| a.rel)
            .collect();
        for fk in self.problem.fks().iter() {
            reads.insert(fk.from);
            reads.insert(fk.to);
        }
        // Per-block precision is only provable for a compiled,
        // parameter-free FO plan (the static analyzer walks its IR); every
        // other backend reads the raw instance, so its read-set is the
        // whole-relation closure of `reads` — exactly the old rel-level
        // Unaffected condition.
        let read_set = match &self.route {
            Route::FoPlan(r) => match &r.compiled {
                Some(c) if c.n_params() == 0 => c.read_set(),
                _ => ReadSet::whole_over(reads.iter().copied()),
            },
            _ => ReadSet::whole_over(reads.iter().copied()),
        };
        IncrementalSolver {
            solver: self,
            reads,
            read_set,
            state: None,
        }
    }

    /// Answers a batch of instances as a **lazy, input-ordered iterator**:
    /// verdict `i` always corresponds to `dbs[i]`, whatever the shard
    /// completion order. Internally the iterator pulls chunks of the input
    /// and, on the FO-compiled and poly-time routes, shards each chunk
    /// across the scoped thread pool (the PR 4 batching machinery) under
    /// [`ExecOptions::threads`] — the fallback route stays sequential so
    /// each verdict keeps its per-instance diagnostics. Chunk evaluation
    /// happens on demand, so an early `take(k)` never pays for the tail of
    /// the batch.
    ///
    /// ```
    /// # use cqa_core::{Problem, Solver};
    /// # use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    /// # use std::sync::Arc;
    /// # let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    /// # let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
    /// # let fks = parse_fks(&s, "N[2] -> O").unwrap();
    /// # let solver = Solver::new(Problem::new(q, fks).unwrap()).unwrap();
    /// let dbs = vec![
    ///     parse_instance(&s, "N(c,a) O(a) P(a)").unwrap(),
    ///     parse_instance(&s, "N(c,a) N(c,b) O(a) P(a)").unwrap(),
    /// ];
    /// let verdicts: Vec<bool> = solver.solve_many(&dbs).map(|v| v.is_certain()).collect();
    /// assert_eq!(verdicts, vec![true, false]);
    /// ```
    pub fn solve_many<'a>(&'a self, dbs: &'a [Instance]) -> SolveMany<'a> {
        SolveMany {
            solver: self,
            dbs,
            next: 0,
            buffer: VecDeque::new(),
        }
    }

    fn plan_depth(&self) -> Option<usize> {
        match &self.route {
            Route::FoPlan(r) => Some(r.depth),
            _ => None,
        }
    }

    /// One dispatch under `options`: certainty, backend tag, optional
    /// diagnostics. The sharding policy and (on the fallback route) the
    /// oracle budget come from `options`; everything compiled at build
    /// time comes from the route.
    fn decide_with(
        &self,
        db: &Instance,
        options: &ExecOptions,
    ) -> (Certainty, BackendKind, Option<String>) {
        match &self.route {
            Route::FoPlan(r) => match &r.compiled {
                Some(c) => {
                    let policy = options.policy();
                    let ans = if policy.threads() > 1 {
                        c.answer_parallel(db, &policy)
                    } else {
                        c.answer(db)
                    };
                    (Certainty::from_bool(ans), BackendKind::CompiledPlan, None)
                }
                None => (
                    Certainty::from_bool(r.plan.answer(db)),
                    BackendKind::MaterializedPlan,
                    None,
                ),
            },
            Route::PolyTime(r) => (
                Certainty::from_bool(r.backend.certain(db)),
                r.kind,
                None,
            ),
            Route::Fallback(r) => {
                // A per-request budget overrides the route's baked-in
                // limits: the oracle is stateless, so re-limiting it per
                // call is free and lets one cached hard-class solver serve
                // requests with different budgets.
                let rebudgeted;
                let oracle = match options.fallback {
                    FallbackBudget::Allow(limits) => {
                        rebudgeted = CertaintyOracle::with_limits(limits);
                        &rebudgeted
                    }
                    FallbackBudget::Deny => &r.oracle,
                };
                match oracle.is_certain(db, self.problem.query(), self.problem.fks()) {
                    OracleOutcome::Certain => (Certainty::Certain, BackendKind::Oracle, None),
                    OracleOutcome::NotCertain(witness) => (
                        Certainty::NotCertain,
                        BackendKind::Oracle,
                        Some(format!("falsifying ⊕-repair: {witness}")),
                    ),
                    OracleOutcome::Inconclusive(why) => {
                        (Certainty::Inconclusive, BackendKind::Oracle, Some(why))
                    }
                }
            }
        }
    }
}

impl fmt::Display for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} routed {}", self.problem, self.route)
    }
}

// A solver is shared behind an `Arc` by the plan cache of `cqa serve`, with
// concurrent requests solving through one compiled route — pin the auto
// traits so a field change that silently drops them is a compile error, not
// a runtime surprise in the service.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Solver>();
    assert_send_sync::<Verdict>();
    assert_send_sync::<ExecOptions>();
};

/// How many instances each lazily evaluated [`SolveMany`] chunk holds per
/// worker thread: wide enough to amortize the scoped-pool spawn, narrow
/// enough that laziness is observable on server-sized batches.
const BATCH_PER_THREAD: usize = 8;

/// The lazy, input-ordered iterator returned by [`Solver::solve_many`].
#[derive(Debug)]
pub struct SolveMany<'a> {
    solver: &'a Solver,
    dbs: &'a [Instance],
    next: usize,
    buffer: VecDeque<Verdict>,
}

impl SolveMany<'_> {
    /// Pulls the next chunk of the input and evaluates it, sharding across
    /// the pool when the route and options allow.
    fn refill(&mut self) {
        let policy = self.solver.options.policy();
        let width = policy.threads();
        // Only routes that can shard pull wide chunks; the fallback route
        // (and an uncompiled FO plan) stays at width 1 so `take(k)` never
        // pays for oracle searches beyond the pulled prefix.
        let can_shard = match &self.solver.route {
            Route::FoPlan(r) => r.compiled.is_some(),
            Route::PolyTime(_) => true,
            Route::Fallback(_) => false,
        };
        let chunk_len = if width > 1 && can_shard {
            (width * BATCH_PER_THREAD).min(self.dbs.len() - self.next)
        } else {
            1
        };
        let chunk = &self.dbs[self.next..self.next + chunk_len];
        self.next += chunk_len;

        // Sharded fast paths: a decidable backend and a chunk wide enough
        // to clear the fan-out floor. Contiguous shards with a
        // chunk-ordered join keep verdicts in input order by construction.
        // The fallback route never shards: its per-instance oracle search
        // dominates any spawn saving and its verdicts carry per-instance
        // diagnostics (inconclusive reasons, witnesses).
        if policy.should_parallelize(chunk.len()) {
            let start = Instant::now();
            let sharded: Option<(Vec<bool>, BackendKind)> = match &self.solver.route {
                Route::FoPlan(r) => r.compiled.as_ref().map(|c| {
                    (
                        policy.pool().map(chunk, |db| c.answer(db)),
                        BackendKind::CompiledPlan,
                    )
                }),
                Route::PolyTime(r) => Some((
                    policy.pool().map(chunk, |db| r.backend.certain(db)),
                    r.kind,
                )),
                Route::Fallback(_) => None,
            };
            if let Some((answers, backend)) = sharded {
                let elapsed = start.elapsed();
                let depth = self.solver.plan_depth();
                let join = self.solver.join_provenance();
                self.buffer.extend(answers.into_iter().map(|ans| Verdict {
                    certainty: Certainty::from_bool(ans),
                    provenance: Provenance {
                        backend,
                        elapsed,
                        batch: chunk.len(),
                        plan_depth: depth,
                        join,
                        delta: None,
                        detail: None,
                    },
                }));
                return;
            }
        }
        // Sequential path (narrow chunks, uncompiled FO plans, the
        // fallback route): per-instance dispatch with exact per-verdict
        // timing.
        self.buffer
            .extend(chunk.iter().map(|db| self.solver.solve(db)));
    }
}

impl Iterator for SolveMany<'_> {
    type Item = Verdict;

    fn next(&mut self) -> Option<Verdict> {
        while self.buffer.is_empty() && self.next < self.dbs.len() {
            self.refill();
        }
        self.buffer.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.buffer.len() + (self.dbs.len() - self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SolveMany<'_> {}

/// The memo an incremental session keeps between calls, pinned to exactly
/// one instance mutation history via the `(uid, epoch)` pair — a verdict
/// computed on a different instance (or on this instance at a different
/// epoch) is never reused.
#[derive(Debug)]
struct SessionState {
    uid: u64,
    epoch: u64,
    verdict: Verdict,
    rows: ResidualCache,
}

/// An incremental **delta-certainty** session (from [`Solver::incremental`]):
/// after an initial [`solve`], each [`reanswer`] applies a [`Delta`] to the
/// instance and re-derives the verdict with as little work as soundness
/// allows.
///
/// Three outcomes, recorded in [`Provenance::delta`]:
///
/// * [`DeltaOutcome::Unaffected`] — no fact of the delta lands in a
///   (relation, block) of the statically inferred [`ReadSet`]
///   ([`IncrementalSolver::read_set`]; block-precise on the compiled FO
///   route, whole-relation elsewhere) and the prior verdict was definite,
///   so it is reused outright. Inconclusive verdicts are **never** reused
///   this way: the fallback oracle's budget exhaustion depends on blocks
///   the query does not mention.
/// * [`DeltaOutcome::Localized`] — the compiled plan is Δ-localizable (a
///   parameter-free Lemma 45 tail over one ground-key block, with no
///   self-references; see [`CompiledPlan::localizable_rel`]) and the delta
///   only touches that relation: the plan re-runs through a per-row
///   residual cache, so only block facts whose residual was never computed
///   (or whose content changed) are evaluated.
/// * [`DeltaOutcome::Recomputed`] — anything else. Non-localizable deltas
///   are *detected*, and the session falls back to a full from-scratch
///   solve rather than ever serving a stale verdict.
///
/// The session applies the delta itself (single-writer protocol): staleness
/// is checked against `(uid, epoch)` **before** the mutation, so a caller
/// who mutated the instance out of band simply pays for a recompute.
///
/// ```
/// use cqa_core::{DeltaOutcome, Problem, Solver};
/// use cqa_model::parser::{parse_fact, parse_fks, parse_instance, parse_query, parse_schema};
/// use cqa_model::Delta;
/// use std::sync::Arc;
///
/// let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
/// let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
/// let fks = parse_fks(&s, "N[2] -> O").unwrap();
/// let solver = Solver::new(Problem::new(q, fks).unwrap()).unwrap();
/// let mut db = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
///
/// let mut session = solver.incremental();
/// assert!(session.solve(&db).is_certain());
///
/// // Dropping P(b) breaks certainty; only the touched block re-evaluates.
/// let mut delta = Delta::new();
/// delta.remove(parse_fact("P(b)").unwrap());
/// let v = session.reanswer(&mut db, &delta).unwrap();
/// assert_eq!(v.as_bool(), Some(false));
/// ```
///
/// [`solve`]: IncrementalSolver::solve
/// [`reanswer`]: IncrementalSolver::reanswer
#[derive(Debug)]
pub struct IncrementalSolver<'s> {
    solver: &'s Solver,
    /// Sound overapproximation of every relation whose content can affect
    /// the verdict: the query's atoms plus each foreign key's source and
    /// target.
    reads: BTreeSet<RelName>,
    /// The statically inferred read-set: on the compiled FO route this is
    /// [`CompiledPlan::read_set`] — per-*block* precise where a Lemma 45
    /// tail probes a ground key — and on every other route the
    /// whole-relation closure of `reads`.
    read_set: ReadSet,
    state: Option<SessionState>,
}

impl<'s> IncrementalSolver<'s> {
    /// The solver this session answers through.
    pub fn solver(&self) -> &'s Solver {
        self.solver
    }

    /// The relations whose content can affect this problem's verdict —
    /// deltas disjoint from this set are [`DeltaOutcome::Unaffected`].
    pub fn reads(&self) -> &BTreeSet<RelName> {
        &self.reads
    }

    /// The statically inferred read-set the *Unaffected* rung fires on: a
    /// delta none of whose facts the set [`ReadSet::may_read`] reuses the
    /// prior definite verdict outright. On the compiled FO route this is
    /// block-precise (a ground-key Lemma 45 probe admits deltas to *other*
    /// blocks of the same relation); elsewhere it is whole-relation.
    pub fn read_set(&self) -> &ReadSet {
        &self.read_set
    }

    /// Whether no fact of `delta` can be read by the plan, per the inferred
    /// [`ReadSet`]. A fact is judged by its key prefix (cut at the
    /// relation's declared key length); an undeclared relation is
    /// conservatively treated as readable.
    fn delta_unread(&self, delta: &Delta) -> bool {
        let schema = self.solver.problem.query().schema();
        delta.ops().iter().all(|op| {
            let fact = op.fact();
            match schema.signature(fact.rel) {
                Some(sig) => {
                    let key = &fact.args[..sig.key_len.min(fact.args.len())];
                    !self.read_set.may_read(fact.rel, key)
                }
                None => false,
            }
        })
    }

    /// The verdict of the most recent [`solve`] / [`reanswer`], if any.
    ///
    /// [`solve`]: IncrementalSolver::solve
    /// [`reanswer`]: IncrementalSolver::reanswer
    pub fn last_verdict(&self) -> Option<&Verdict> {
        self.state.as_ref().map(|s| &s.verdict)
    }

    /// Answers `db` from scratch and primes the session state (and, on
    /// Δ-localizable plans, the residual cache) for subsequent
    /// [`IncrementalSolver::reanswer`] calls.
    pub fn solve(&mut self, db: &Instance) -> Verdict {
        self.recompute(db, None)
    }

    /// Applies `delta` to `db` and re-derives the verdict incrementally.
    ///
    /// Validation is atomic ([`Instance::apply`]): a malformed delta leaves
    /// both the instance and the session state untouched. See the type
    /// docs for the reuse ladder; the chosen rung is in the returned
    /// verdict's [`Provenance::delta`].
    pub fn reanswer(&mut self, db: &mut Instance, delta: &Delta) -> Result<Verdict, ModelError> {
        let start = Instant::now();
        // Staleness is judged BEFORE the delta applies: the session's
        // (uid, epoch) must pin exactly the state the prior verdict was
        // computed on. Out-of-band mutations (or a different instance)
        // show up as an epoch/uid mismatch and force a recompute.
        let prior_valid = self
            .state
            .as_ref()
            .is_some_and(|s| s.uid == db.uid() && s.epoch == db.epoch());
        let touched = delta.rels();
        db.apply(delta)?;
        if !prior_valid {
            return Ok(self.recompute(
                db,
                Some(DeltaOutcome::Recomputed(
                    "no prior verdict for this instance state",
                )),
            ));
        }
        // Rung 1 — Unaffected: no fact of the delta lands in a (relation,
        // block) the inferred read-set says the plan can read, and the
        // prior verdict is definite. (Inconclusive is excluded: whether
        // the oracle's budget suffices depends on blocks the query never
        // mentions.) On the compiled FO route this is per-block — a delta
        // to N(d,·) under a plan probing only the N('c') block reuses the
        // verdict even though N itself is a read relation.
        if self.delta_unread(delta) {
            let state = self.state.as_mut().expect("prior_valid checked");
            if state.verdict.as_bool().is_some() {
                state.epoch = db.epoch();
                let mut verdict = state.verdict.clone();
                verdict.provenance.elapsed = start.elapsed();
                verdict.provenance.batch = 1;
                verdict.provenance.delta = Some(DeltaOutcome::Unaffected);
                return Ok(verdict);
            }
        }
        // Rung 2 — Localized: the compiled plan reads exactly one
        // ground-key block of `rel` (plus residual lookups in *other*
        // relations), and the delta's read-set intersection is confined to
        // `rel`. Cached residuals stay valid because localizability
        // guarantees the residual never reads `rel` itself.
        if let Some(c) = self.localizable_plan() {
            let rel = c.localizable_rel().expect("plan checked localizable");
            if touched.iter().all(|r| *r == rel || !self.reads.contains(r)) {
                let depth = self.solver.plan_depth();
                let state = self.state.as_mut().expect("prior_valid checked");
                let (ans, reused, evaluated) = c.answer_delta(db, &mut state.rows);
                let verdict = Verdict {
                    certainty: Certainty::from_bool(ans),
                    provenance: Provenance {
                        backend: BackendKind::CompiledPlan,
                        elapsed: start.elapsed(),
                        batch: 1,
                        plan_depth: depth,
                        join: self.solver.join_provenance(),
                        delta: Some(DeltaOutcome::Localized { reused, evaluated }),
                        detail: None,
                    },
                };
                state.epoch = db.epoch();
                state.verdict = verdict.clone();
                return Ok(verdict);
            }
        }
        // Rung 3 — detected as non-localizable: full re-answer.
        Ok(self.recompute(db, Some(DeltaOutcome::Recomputed("delta not localizable"))))
    }

    /// The compiled plan, when the route has one and it is Δ-localizable.
    fn localizable_plan(&self) -> Option<&'s CompiledPlan> {
        let solver = self.solver;
        match &solver.route {
            Route::FoPlan(r) => r
                .compiled
                .as_ref()
                .filter(|c| c.localizable_rel().is_some()),
            _ => None,
        }
    }

    /// Full re-answer, replacing the session state. Localizable plans
    /// recompute through the caching evaluator — the plan's single
    /// ground-key block is everything it reads, so the cached run *is* the
    /// full answer and the residual cache comes out warm for the next
    /// delta. Everything else goes through [`Solver::solve`] with a fresh
    /// (empty) cache.
    fn recompute(&mut self, db: &Instance, outcome: Option<DeltaOutcome>) -> Verdict {
        let mut rows = ResidualCache::new();
        let verdict = match self.localizable_plan() {
            Some(c) => {
                let start = Instant::now();
                let (ans, _, _) = c.answer_delta(db, &mut rows);
                Verdict {
                    certainty: Certainty::from_bool(ans),
                    provenance: Provenance {
                        backend: BackendKind::CompiledPlan,
                        elapsed: start.elapsed(),
                        batch: 1,
                        plan_depth: self.solver.plan_depth(),
                        join: self.solver.join_provenance(),
                        delta: outcome,
                        detail: None,
                    },
                }
            }
            None => {
                let mut v = self.solver.solve(db);
                v.provenance.delta = outcome;
                v
            }
        };
        self.state = Some(SessionState {
            uid: db.uid(),
            epoch: db.epoch(),
            verdict: verdict.clone(),
            rows,
        });
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use cqa_model::Schema;
    use std::sync::Arc;

    fn problem(schema: &Arc<Schema>, q: &str, fks: &str) -> Problem {
        Problem::new(
            parse_query(schema, q).unwrap(),
            parse_fks(schema, fks).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn fo_problem_routes_to_compiled_plan() {
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let solver = Solver::new(problem(&s, "N('c',y), O(y), P(y)", "N[2] -> O")).unwrap();
        assert_eq!(solver.route().kind(), RouteKind::Fo);

        let yes = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
        let v = solver.solve(&yes);
        assert!(v.is_certain());
        assert_eq!(v.provenance.backend, BackendKind::CompiledPlan);
        assert!(v.provenance.plan_depth.is_some());

        let no = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a)").unwrap();
        assert_eq!(solver.solve(&no).as_bool(), Some(false));
    }

    #[test]
    fn materialized_evaluator_is_selectable() {
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let solver = Solver::builder(problem(&s, "N('c',y), O(y), P(y)", "N[2] -> O"))
            .options(ExecOptions {
                evaluator: Evaluator::Materialized,
                ..ExecOptions::sequential()
            })
            .build()
            .unwrap();
        let yes = parse_instance(&s, "N(c,a) O(a) P(a)").unwrap();
        let v = solver.solve(&yes);
        assert!(v.is_certain());
        assert_eq!(v.provenance.backend, BackendKind::MaterializedPlan);
    }

    #[test]
    fn prop16_shape_routes_to_reachability_under_renaming() {
        let s = Arc::new(parse_schema("E[2,1] V[1,1]").unwrap());
        let solver = Solver::new(problem(&s, "E(x,x), V(x)", "E[2] -> V")).unwrap();
        assert_eq!(solver.route().kind(), RouteKind::PolyTime);

        let yes = parse_instance(&s, "E(a,a) V(a)").unwrap();
        let v = solver.solve(&yes);
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(v.provenance.backend, BackendKind::Reachability);

        let no = parse_instance(&s, "E(a,a) E(a,b) V(a)").unwrap();
        assert_eq!(solver.solve(&no).as_bool(), Some(false));
    }

    #[test]
    fn prop17_shape_routes_to_dual_horn_under_renaming() {
        let s = Arc::new(parse_schema("Emp[3,1] Dept[1,1]").unwrap());
        let solver =
            Solver::new(problem(&s, "Emp(x,'hq',y), Dept(y)", "Emp[3] -> Dept")).unwrap();
        assert_eq!(solver.route().kind(), RouteKind::PolyTime);

        let yes = parse_instance(&s, "Emp(b1,hq,1) Dept(1)").unwrap();
        let v = solver.solve(&yes);
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(v.provenance.backend, BackendKind::DualHorn);

        let no = parse_instance(&s, "Emp(b1,hq,1) Emp(b1,x,2) Dept(1)").unwrap();
        assert_eq!(solver.solve(&no).as_bool(), Some(false));
    }

    #[test]
    fn hard_class_requires_explicit_fallback_opt_in() {
        // Example 13's q2: NL-hard and not a Proposition 16/17 shape
        // (O has arity 2), so only the oracle can answer it.
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let p = problem(&s, "N(x,'c',y), O(y,w)", "N[3] -> O");
        match Solver::new(p.clone()) {
            Err(SolverError::HardWithoutFallback(reason)) => assert!(reason.nl_hard()),
            other => panic!("expected HardWithoutFallback, got {other:?}"),
        }

        let solver = Solver::builder(p)
            .options(ExecOptions::default().allow_fallback())
            .build()
            .unwrap();
        assert_eq!(solver.route().kind(), RouteKind::Fallback);
        let yes = parse_instance(&s, "N(k,c,a) O(a,3)").unwrap();
        let v = solver.solve(&yes);
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(v.provenance.backend, BackendKind::Oracle);
    }

    #[test]
    fn fallback_not_certain_carries_the_witness() {
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let solver = Solver::builder(problem(&s, "N(x,'c',y), O(y,w)", "N[3] -> O"))
            .options(ExecOptions::default().allow_fallback())
            .build()
            .unwrap();
        // Dropping the N-block falsifies q: a witness exists and the
        // verdict's provenance re-surfaces it.
        let db = parse_instance(&s, "N(k,d,b)").unwrap();
        let v = solver.solve(&db);
        assert_eq!(v.as_bool(), Some(false));
        let detail = v.provenance.detail.expect("witness attached");
        assert!(detail.contains("falsifying ⊕-repair"), "{detail}");
    }

    #[test]
    fn solve_many_shards_the_poly_route_in_input_order() {
        let s = Arc::new(parse_schema("E[2,1] V[1,1]").unwrap());
        let solver = Solver::builder(problem(&s, "E(x,x), V(x)", "E[2] -> V"))
            .options(ExecOptions {
                min_parallel_units: 1,
                ..ExecOptions::default().with_threads(8)
            })
            .build()
            .unwrap();
        // Instance i certain iff i is even (odd ones get an escape edge).
        let dbs: Vec<Instance> = (0..29)
            .map(|i| {
                let text = if i % 2 == 0 {
                    "E(a,a) V(a)"
                } else {
                    "E(a,a) E(a,b) V(a)"
                };
                parse_instance(&s, text).unwrap()
            })
            .collect();
        let verdicts: Vec<Verdict> = solver.solve_many(&dbs).collect();
        assert_eq!(verdicts.len(), dbs.len());
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(v.as_bool(), Some(i % 2 == 0), "verdict {i} out of order");
            assert_eq!(v.provenance.backend, BackendKind::Reachability);
        }
        // Wide chunks fanned out: batch provenance reflects the shard.
        // On a single-core machine the clamp resolves the width to 1 and
        // the sequential path (batch 1) is the *correct* behavior — that
        // is satellite fix for the 0.83× sharding slowdown.
        if rayon_lite::current_num_threads() > 1 {
            assert!(verdicts[0].provenance.batch > 1, "poly route must shard");
        } else {
            assert_eq!(verdicts[0].provenance.batch, 1, "width 1 must not shard");
        }
    }

    #[test]
    fn fallback_solve_many_pulls_one_instance_at_a_time() {
        // Even under a wide thread policy the fallback route cannot shard,
        // so chunks stay at width 1: `take(k)` never pays for oracle
        // searches past the pulled prefix.
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let solver = Solver::builder(problem(&s, "N(x,'c',y), O(y,w)", "N[3] -> O"))
            .options(ExecOptions {
                min_parallel_units: 1,
                ..ExecOptions::default().with_threads(8).allow_fallback()
            })
            .build()
            .unwrap();
        let dbs: Vec<Instance> = (0..5)
            .map(|_| parse_instance(&s, "N(k,c,a) O(a,3)").unwrap())
            .collect();
        let first = solver.solve_many(&dbs).next().unwrap();
        assert_eq!(first.provenance.batch, 1, "fallback chunks must stay narrow");
        assert_eq!(first.as_bool(), Some(true));
    }

    #[test]
    fn exhausted_budget_is_inconclusive_never_a_guess() {
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let solver = Solver::builder(problem(&s, "N(x,'c',y), O(y,w)", "N[3] -> O"))
            .options(ExecOptions::default().with_fallback(SearchLimits::budgeted(1)))
            .build()
            .unwrap();
        // Two 2-fact blocks: candidate space 9 > budget 1.
        let db = parse_instance(&s, "N(k,c,a) N(k,d,b) O(a,3) O(a,4)").unwrap();
        let v = solver.solve(&db);
        assert_eq!(v.certainty, Certainty::Inconclusive);
        assert!(v.provenance.detail.is_some(), "carries the oracle's reason");
        assert_eq!(v.as_bool(), None);
    }

    #[test]
    fn solve_many_is_lazy_and_input_ordered() {
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let solver = Solver::builder(problem(&s, "N('c',y), O(y), P(y)", "N[2] -> O"))
            .options(ExecOptions::default().with_threads(8))
            .build()
            .unwrap();
        // Instance i is a yes-instance iff i is even.
        let dbs: Vec<Instance> = (0..37)
            .map(|i| {
                let text = if i % 2 == 0 {
                    "N(c,a) O(a) P(a)"
                } else {
                    "N(c,a) N(c,b) O(a) P(a)"
                };
                parse_instance(&s, text).unwrap()
            })
            .collect();
        let verdicts: Vec<Verdict> = solver.solve_many(&dbs).collect();
        assert_eq!(verdicts.len(), dbs.len());
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(v.as_bool(), Some(i % 2 == 0), "verdict {i} out of order");
        }
        // Taking a prefix stays lazy: the iterator reports its exact length
        // up front but only evaluates pulled chunks.
        let mut iter = solver.solve_many(&dbs);
        assert_eq!(iter.len(), 37);
        assert!(iter.next().unwrap().is_certain());
    }

    #[test]
    fn options_fold_the_scattered_knobs() {
        let opts = ExecOptions::default();
        assert!(opts.threads >= 1, "threads resolved, never 0");
        let seq = ExecOptions::sequential();
        assert_eq!(seq.policy().threads(), 1);
        assert!(!seq.policy().should_parallelize(usize::MAX - 1));
        let wide = ExecOptions::sequential().with_threads(6);
        // The policy clamps to availability, so the resolved width is the
        // requested 6 only on machines that wide.
        assert_eq!(
            wide.policy().threads(),
            6.min(rayon_lite::current_num_threads())
        );
    }

    #[test]
    fn incremental_fo_session_walks_the_reuse_ladder() {
        use cqa_model::parser::parse_fact;
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1] Z[1,1]").unwrap());
        let solver = Solver::new(problem(&s, "N('c',y), O(y), P(y)", "N[2] -> O")).unwrap();
        let mut db = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
        let mut session = solver.incremental();
        assert!(session.solve(&db).is_certain());

        // Z is read by nothing: the prior (definite) verdict is reused.
        let mut dz = Delta::new();
        dz.insert(parse_fact("Z(zz)").unwrap());
        let v = session.reanswer(&mut db, &dz).unwrap();
        assert_eq!(v.provenance.delta, Some(DeltaOutcome::Unaffected));
        assert_eq!(v.as_bool(), Some(true));

        // A new block fact localizes: the cached residuals of the two old
        // rows are reused, only the new row is evaluated (and falsifies).
        let mut dn = Delta::new();
        dn.insert(parse_fact("N(c,e)").unwrap());
        let v = session.reanswer(&mut db, &dn).unwrap();
        assert_eq!(v.as_bool(), Some(false));
        assert_eq!(
            v.provenance.delta,
            Some(DeltaOutcome::Localized {
                reused: 2,
                evaluated: 1
            })
        );

        // Removing it flips the verdict back — from cache alone.
        let mut dr = Delta::new();
        dr.remove(parse_fact("N(c,e)").unwrap());
        let v = session.reanswer(&mut db, &dr).unwrap();
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(
            v.provenance.delta,
            Some(DeltaOutcome::Localized {
                reused: 2,
                evaluated: 0
            })
        );

        // Touching a residual-read relation (P) is NOT localizable: the
        // session detects it and recomputes from scratch.
        let mut dp = Delta::new();
        dp.remove(parse_fact("P(b)").unwrap());
        let v = session.reanswer(&mut db, &dp).unwrap();
        assert_eq!(v.as_bool(), Some(false));
        assert_eq!(
            v.provenance.delta,
            Some(DeltaOutcome::Recomputed("delta not localizable"))
        );

        // Out-of-band mutation bumps the epoch behind the session's back:
        // the stale memo is discarded, never served.
        db.insert(parse_fact("P(b)").unwrap()).unwrap();
        let v = session.reanswer(&mut db, &Delta::new()).unwrap();
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(
            v.provenance.delta,
            Some(DeltaOutcome::Recomputed(
                "no prior verdict for this instance state"
            ))
        );
    }

    #[test]
    fn incremental_unaffected_rung_is_block_precise_on_the_fo_route() {
        use cqa_model::parser::parse_fact;
        use cqa_model::Cst;
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let solver = Solver::new(problem(&s, "N('c',y), O(y), P(y)", "N[2] -> O")).unwrap();
        let mut db = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
        let mut session = solver.incremental();

        // The inferred read-set is strictly tighter than `reads()`: N is a
        // read relation, but only its 'c' block can be probed.
        let n = RelName::new("N");
        assert!(session.reads().contains(&n));
        assert!(session.read_set().may_read(n, &[Cst::new("c")]));
        assert!(!session.read_set().may_read(n, &[Cst::new("d")]));

        assert!(session.solve(&db).is_certain());

        // A delta confined to the N('d') block — same relation, different
        // block — now reuses the verdict outright, where the rel-level
        // condition would have gone to the Localized rung.
        let mut dd = Delta::new();
        dd.insert(parse_fact("N(d,q)").unwrap());
        dd.insert(parse_fact("N(d,r)").unwrap());
        let v = session.reanswer(&mut db, &dd).unwrap();
        assert_eq!(v.provenance.delta, Some(DeltaOutcome::Unaffected));
        assert_eq!(v.as_bool(), Some(true));
        // ... and the reused verdict matches a from-scratch solve.
        assert_eq!(solver.solve(&db).as_bool(), Some(true));

        // Removing one of them again: still unaffected, still correct.
        let mut dr = Delta::new();
        dr.remove(parse_fact("N(d,q)").unwrap());
        let v = session.reanswer(&mut db, &dr).unwrap();
        assert_eq!(v.provenance.delta, Some(DeltaOutcome::Unaffected));
        assert_eq!(v.as_bool(), Some(true));

        // A delta inside the probed block does NOT reuse: it localizes and
        // flips the verdict.
        let mut dc = Delta::new();
        dc.insert(parse_fact("N(c,e)").unwrap());
        let v = session.reanswer(&mut db, &dc).unwrap();
        assert_eq!(v.as_bool(), Some(false));
        assert!(matches!(
            v.provenance.delta,
            Some(DeltaOutcome::Localized { .. })
        ));
    }

    #[test]
    fn incremental_poly_route_reuses_only_unaffected_deltas() {
        use cqa_model::parser::parse_fact;
        let s = Arc::new(parse_schema("E[2,1] V[1,1] Z[1,1]").unwrap());
        let solver = Solver::new(problem(&s, "E(x,x), V(x)", "E[2] -> V")).unwrap();
        let mut db = parse_instance(&s, "E(a,a) V(a)").unwrap();
        let mut session = solver.incremental();
        assert_eq!(session.solve(&db).as_bool(), Some(true));

        let mut dz = Delta::new();
        dz.insert(parse_fact("Z(zz)").unwrap());
        let v = session.reanswer(&mut db, &dz).unwrap();
        assert_eq!(v.provenance.delta, Some(DeltaOutcome::Unaffected));

        // The poly backends have no localizable plan: any delta touching a
        // read relation recomputes — and gets the right answer.
        let mut de = Delta::new();
        de.insert(parse_fact("E(a,b)").unwrap());
        let v = session.reanswer(&mut db, &de).unwrap();
        assert_eq!(v.as_bool(), Some(false));
        assert_eq!(
            v.provenance.delta,
            Some(DeltaOutcome::Recomputed("delta not localizable"))
        );
        assert_eq!(v.provenance.backend, BackendKind::Reachability);
    }

    #[test]
    fn incremental_never_reuses_an_inconclusive_verdict() {
        use cqa_model::parser::parse_fact;
        let s = Arc::new(parse_schema("N[3,1] O[2,1] Z[1,1]").unwrap());
        let solver = Solver::builder(problem(&s, "N(x,'c',y), O(y,w)", "N[3] -> O"))
            .options(ExecOptions::default().with_fallback(SearchLimits::budgeted(1)))
            .build()
            .unwrap();
        let mut db = parse_instance(&s, "N(k,c,a) N(k,d,b) O(a,3) O(a,4)").unwrap();
        let mut session = solver.incremental();
        assert_eq!(session.solve(&db).certainty, Certainty::Inconclusive);

        // Even a fully disjoint delta must NOT resurrect an inconclusive
        // verdict: whether the budget suffices depends on the whole
        // instance, so the oracle runs again.
        let mut dz = Delta::new();
        dz.insert(parse_fact("Z(zz)").unwrap());
        let v = session.reanswer(&mut db, &dz).unwrap();
        assert_eq!(v.certainty, Certainty::Inconclusive);
        assert!(matches!(
            v.provenance.delta,
            Some(DeltaOutcome::Recomputed(_))
        ));
    }

    #[test]
    fn incremental_reanswer_rejects_malformed_deltas_atomically() {
        use cqa_model::parser::parse_fact;
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let solver = Solver::new(problem(&s, "N('c',y), O(y), P(y)", "N[2] -> O")).unwrap();
        let mut db = parse_instance(&s, "N(c,a) O(a) P(a)").unwrap();
        let mut session = solver.incremental();
        assert!(session.solve(&db).is_certain());

        let epoch = db.epoch();
        let mut bad = Delta::new();
        bad.insert(parse_fact("N(c,x)").unwrap());
        bad.insert(parse_fact("O(a,b,c)").unwrap()); // arity 3 ≠ 1
        assert!(session.reanswer(&mut db, &bad).is_err());
        assert_eq!(db.epoch(), epoch, "atomic: nothing applied");
        assert_eq!(db.len(), 3);

        // The session state survives the rejected delta: the next good
        // delta still localizes against the cached residuals.
        let mut good = Delta::new();
        good.insert(parse_fact("N(c,b)").unwrap());
        let v = session.reanswer(&mut db, &good).unwrap();
        assert_eq!(v.as_bool(), Some(false));
        assert_eq!(
            v.provenance.delta,
            Some(DeltaOutcome::Localized {
                reused: 1,
                evaluated: 1
            })
        );
    }

    #[test]
    fn solve_with_overrides_the_fallback_budget_per_request() {
        // One cached hard-class solver, built with a starvation budget;
        // a per-request ExecOptions re-budgets the oracle without
        // rebuilding the route.
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let solver = Solver::builder(problem(&s, "N(x,'c',y), O(y,w)", "N[3] -> O"))
            .options(ExecOptions::default().with_fallback(SearchLimits::budgeted(1)))
            .build()
            .unwrap();
        let db = parse_instance(&s, "N(k,c,a) N(k,d,b) O(a,3) O(a,4)").unwrap();
        assert_eq!(solver.solve(&db).certainty, Certainty::Inconclusive);

        let generous = ExecOptions::default().with_fallback(SearchLimits::budgeted(100_000));
        let v = solver.solve_with(&db, &generous);
        assert_eq!(v.as_bool(), Some(false), "re-budgeted request decides");
        assert_eq!(v.provenance.backend, BackendKind::Oracle);

        // And the solver's own options are untouched: the next plain solve
        // is inconclusive again.
        assert_eq!(solver.solve(&db).certainty, Certainty::Inconclusive);
    }

    #[test]
    fn solve_with_pins_the_request_policy_not_the_built_one() {
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let solver = Solver::builder(problem(&s, "N('c',y), O(y), P(y)", "N[2] -> O"))
            .options(ExecOptions::default().with_threads(8))
            .build()
            .unwrap();
        let db = parse_instance(&s, "N(c,a) O(a) P(a)").unwrap();
        // A sequential per-request override answers identically.
        let v = solver.solve_with(&db, &ExecOptions::sequential());
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(v.provenance.backend, BackendKind::CompiledPlan);
        assert_eq!(v.as_bool(), solver.solve(&db).as_bool());
    }

    #[test]
    fn display_names_the_route() {
        let s = Arc::new(parse_schema("E[2,1] V[1,1]").unwrap());
        let solver = Solver::new(problem(&s, "E(x,x), V(x)", "E[2] -> V")).unwrap();
        let text = solver.to_string();
        assert!(text.contains("poly-time"), "{text}");
    }
}
