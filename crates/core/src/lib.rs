//! # cqa-core
//!
//! The paper's primary contribution, implemented end to end:
//! **deciding whether `CERTAINTY(q, FK)` is in FO, and constructing the
//! consistent first-order rewriting when it is** (Hannula & Wijsen,
//! *A Dichotomy in Consistent Query Answering for Primary Keys and Unary
//! Foreign Keys*, PODS 2022).
//!
//! Main entry points:
//!
//! * [`problem::Problem`] — a validated pair `(q, FK)` with `FK` *about* `q`;
//! * [`solver::Solver`] — **the unified entry point**: classifies once and
//!   routes every query class to its best backend (compiled FO plan,
//!   dual-Horn / reachability poly-time solvers, budgeted oracle), with
//!   typed [`solver::ExecOptions`] and provenance-carrying
//!   [`verdict::Verdict`]s;
//! * [`classify::classify`] — Theorem 12: FO (with a constructed
//!   [`pipeline::RewritePlan`]) vs. L-hard / NL-hard with witnesses;
//! * [`engine::CertainEngine`] — the FO-only predecessor of the solver;
//!   still the home of the flattened formula and SQL artifacts, its
//!   `answer*` methods deprecated thin wrappers;
//! * [`compiled_plan::CompiledPlan`] — the plan compiled once into a lazy,
//!   view-backed executor (zero intermediate database materializations;
//!   the solver's FO hot path), with shard-parallel execution of its block
//!   loops under a [`parallel::ParallelPolicy`];
//! * [`flatten`] — folds a plan into one closed first-order sentence.
//!
//! Internal machinery, each mapped to its definition in the paper:
//!
//! | module | paper |
//! |--------|-------|
//! | [`depgraph`] | dependency graph of `FK`, closures `P_FK` (§3.2) + implication closure `FK*` |
//! | [`obedience`] | obedience, Definition 5 / Theorem 7 (syntactic characterization) |
//! | [`interference`] | block-interference, Definition 9 |
//! | [`fk_types`] | the `weak` / `o→o` / `d→d` / `d→o` taxonomy (Fig. 4) |
//! | [`pipeline`] | the Appendix E reduction pipeline (Lemmas 36, 37, 39, 40, 45) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answers;
pub mod classify;
pub mod compiled_plan;
pub mod depgraph;
pub mod engine;
pub mod fk_types;
pub mod flatten;
pub mod hardness;
pub mod interference;
pub mod obedience;
pub mod parallel;
pub mod pipeline;
pub mod problem;
pub mod solver;
pub mod verdict;

pub use answers::{certain_answers, certain_answers_with, AnswerError};
pub use classify::{classify, Classification, NotFoReason};
pub use compiled_plan::{CompileError, CompiledPlan, ResidualCache};
pub use depgraph::{fk_star, DepGraph};
pub use engine::CertainEngine;
pub use hardness::{lemma14_instance, lemma15_reduction};
pub use interference::{block_interference, InterferenceWitness};
pub use obedience::{atom_obedient, is_obedient_set, qfk_atoms};
pub use parallel::ParallelPolicy;
pub use pipeline::RewritePlan;
pub use problem::Problem;
pub use solver::{
    EmitSpec, EmitSpecError, ExecOptions, Evaluator, FallbackBudget, IncrementalSolver, Route,
    RouteKind, SolveMany, Solver, SolverBuilder, SolverError,
};
pub use verdict::{BackendKind, Certainty, DeltaOutcome, Provenance, Verdict};
