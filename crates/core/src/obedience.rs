//! Obedience (paper Definition 5, decided via Theorem 7).
//!
//! A set `P` of non-primary-key positions of an atom `F = R(…)` is
//! *obedient* when replacing the terms at `P` by fresh variables preserves
//! the query up to `FK`-equivalence — intuitively, the values at those
//! positions "do not matter" because foreign keys can always regenerate
//! suitable witnesses. Theorem 7 characterizes obedience syntactically over
//! the dependency graph of `FK`:
//!
//! 1. no position of `P` lies on a cycle;
//! 2. no constant occurs in `q` at a position of the closure `P_FK`;
//! 3. no variable occurs both at a position of `P_FK` and at one of its
//!    complement `P_FK^co`;
//! 4. no variable occurs at two distinct non-primary-key positions of
//!    `P_FK`.
//!
//! The semantic Definition 5 is implemented independently in the integration
//! tests via the bounded chase of `cqa-repair`, and property-tested to agree
//! with this syntactic test (ablation `closure_ablation` in DESIGN.md).

use crate::depgraph::DepGraph;
use cqa_model::{FkSet, Position, Query, RelName, Term, Var};
use std::collections::{BTreeMap, BTreeSet};

/// `q^FK_P`: the atoms of `q` whose relation has a position in the closure
/// `P_FK` (Definition 5).
pub fn qfk_atoms(q: &Query, fks: &FkSet, p: &BTreeSet<Position>) -> BTreeSet<RelName> {
    let g = DepGraph::of(fks);
    g.closure(p).into_iter().map(|pos| pos.rel).filter(|r| q.contains(*r)).collect()
}

/// `q^FK_R` for the `rel`-atom: shorthand for `q^FK_P` with `P` the set of
/// all non-primary-key positions of `rel`.
pub fn qfk_atoms_of(q: &Query, fks: &FkSet, rel: RelName) -> BTreeSet<RelName> {
    qfk_atoms(q, fks, &nonkey_positions(q, rel))
}

/// The non-primary-key positions of the `rel`-atom of `q`.
pub fn nonkey_positions(q: &Query, rel: RelName) -> BTreeSet<Position> {
    match q.atom(rel) {
        Some(_) => {
            let sig = q.sig(rel);
            sig.nonkey_positions().map(|i| Position::new(rel, i)).collect()
        }
        None => BTreeSet::new(),
    }
}

/// Theorem 7: whether the position set `P` (non-primary-key positions of a
/// single atom) is obedient over `FK` and `q`.
pub fn is_obedient_set(q: &Query, fks: &FkSet, p: &BTreeSet<Position>) -> bool {
    if p.is_empty() {
        return true;
    }
    let g = DepGraph::of(fks);

    // (I) no position of P on a cycle.
    if p.iter().any(|&pos| g.on_cycle(pos)) {
        return false;
    }

    let closure = g.closure(p);
    // Restrict to positions of relations occurring in q (FK is about q, so
    // closure positions always are; keep the filter for robustness).
    let closure_in_q: BTreeSet<Position> =
        closure.into_iter().filter(|pos| q.contains(pos.rel)).collect();

    // (II) no constant at a position of P_FK.
    for &pos in &closure_in_q {
        if let Some(Term::Cst(_)) = q.term_at(pos) {
            return false;
        }
    }

    // Variable occurrence maps.
    let mut in_closure: BTreeMap<Var, Vec<Position>> = BTreeMap::new();
    let mut in_complement: BTreeSet<Var> = BTreeSet::new();
    for pos in q.positions() {
        if let Some(Term::Var(v)) = q.term_at(pos) {
            if closure_in_q.contains(&pos) {
                in_closure.entry(v).or_default().push(pos);
            } else {
                in_complement.insert(v);
            }
        }
    }

    // (III) no variable at both a P_FK position and a complement position.
    if in_closure.keys().any(|v| in_complement.contains(v)) {
        return false;
    }

    // (IV) no variable at two distinct non-primary-key positions of P_FK.
    for positions in in_closure.values() {
        let nonkey_count = positions
            .iter()
            .filter(|pos| {
                let sig = q.sig(pos.rel);
                !sig.is_key_pos(pos.idx)
            })
            .count();
        if nonkey_count >= 2 {
            return false;
        }
    }
    true
}

/// Whether a single position is obedient (Corollary 8 reduces sets to
/// singletons; both directions are exposed and property-tested).
pub fn is_obedient_position(q: &Query, fks: &FkSet, pos: Position) -> bool {
    is_obedient_set(q, fks, &[pos].into_iter().collect())
}

/// Whether the `rel`-atom is obedient: the set of **all** its
/// non-primary-key positions is obedient (Definition 5).
pub fn atom_obedient(q: &Query, fks: &FkSet, rel: RelName) -> bool {
    is_obedient_set(q, fks, &nonkey_positions(q, rel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_query, parse_schema};
    use std::sync::Arc;

    fn pos(r: &str, i: usize) -> Position {
        Position::new(RelName::new(r), i)
    }

    fn rel(r: &str) -> RelName {
        RelName::new(r)
    }

    #[test]
    fn example_6_obedience() {
        // q = {N(x,'c',y), O(y)}, FK = {N[3]→O}:
        // {(N,2)} is NOT obedient (constant c in its closure);
        // {(N,3)} IS obedient; the O-atom is obedient (no non-key positions).
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();

        assert!(!is_obedient_position(&q, &fks, pos("N", 2)));
        assert!(is_obedient_position(&q, &fks, pos("N", 3)));
        assert!(atom_obedient(&q, &fks, rel("O")));
        // The full N-atom set {(N,2),(N,3)} is therefore disobedient.
        assert!(!atom_obedient(&q, &fks, rel("N")));

        // q^FK for the two singleton sets (Example 6's computation).
        let p0: BTreeSet<Position> = [pos("N", 2)].into_iter().collect();
        assert_eq!(qfk_atoms(&q, &fks, &p0), [rel("N")].into_iter().collect());
        let p1: BTreeSet<Position> = [pos("N", 3)].into_iter().collect();
        assert_eq!(
            qfk_atoms(&q, &fks, &p1),
            [rel("N"), rel("O")].into_iter().collect()
        );
    }

    #[test]
    fn corollary_8_set_vs_singletons() {
        // A set is obedient iff each singleton is (Corollary 8) — exercised
        // on Example 13's q1 = {N(x,u,y), O(y,w)}.
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let q = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let both: BTreeSet<Position> = [pos("N", 2), pos("N", 3)].into_iter().collect();
        let set_ok = is_obedient_set(&q, &fks, &both);
        let singles_ok = is_obedient_position(&q, &fks, pos("N", 2))
            && is_obedient_position(&q, &fks, pos("N", 3));
        assert_eq!(set_ok, singles_ok);
        assert!(set_ok, "q1's N-atom is obedient (Example 13)");
    }

    #[test]
    fn example_13_variants() {
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let fks = parse_fks(&s, "N[3] -> O").unwrap();

        // q1 = {N(x,u,y), O(y,w)}: O obedient, N obedient ((N,2) holds an
        // orphan variable).
        let q1 = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
        assert!(atom_obedient(&q1, &fks, rel("O")));
        assert!(atom_obedient(&q1, &fks, rel("N")));

        // q2 = {N(x,'c',y), O(y,w)}: O obedient, N disobedient (constant).
        let q2 = parse_query(&s, "N(x,'c',y), O(y,w)").unwrap();
        assert!(atom_obedient(&q2, &fks, rel("O")));
        assert!(!atom_obedient(&q2, &fks, rel("N")));

        // q3 = {N(x,'c',y), O(y,'c')}: O disobedient (constant at its
        // non-key position).
        let q3 = parse_query(&s, "N(x,'c',y), O(y,'c')").unwrap();
        assert!(!atom_obedient(&q3, &fks, rel("O")));
    }

    #[test]
    fn condition_i_cycles() {
        // Example 27's FK = {N[2]→N, N[2]→O}: (N,2) lies on a cycle.
        let s = Arc::new(parse_schema("N[2,1] O[2,1]").unwrap());
        let q = parse_query(&s, "N(x,x), O(x,y)").unwrap();
        let fks = parse_fks(&s, "N[2] -> N, N[2] -> O").unwrap();
        assert!(!is_obedient_position(&q, &fks, pos("N", 2)));
    }

    #[test]
    fn condition_iii_shared_variable_with_complement() {
        // §8's example: q = {N('c',y), O(y), P(y)}, FK = {N[2]→O}: the
        // closure of (N,2) holds y, which also occurs at (P,1) ∈ co-closure.
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        assert!(!is_obedient_position(&q, &fks, pos("N", 2)));
        // O and P have no non-key positions: obedient.
        assert!(atom_obedient(&q, &fks, rel("O")));
        assert!(atom_obedient(&q, &fks, rel("P")));
    }

    #[test]
    fn condition_iv_repeated_in_closure() {
        // q = {N(x, y), O(y, y)}, FK = {N[2]→O}: closure of (N,2) contains
        // (O,2) where y appears... build a case where a variable repeats at
        // two non-key closure positions: O(y, z, z).
        let s = Arc::new(parse_schema("N[2,1] O[3,1]").unwrap());
        let q = parse_query(&s, "N(x,y), O(y,z,z)").unwrap();
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        assert!(!is_obedient_position(&q, &fks, pos("N", 2)));

        // With distinct variables the position becomes obedient.
        let q2 = parse_query(&s, "N(x,y), O(y,z,w)").unwrap();
        assert!(is_obedient_position(&q2, &fks, pos("N", 2)));
    }

    #[test]
    fn atoms_outside_fk_are_value_sensitive() {
        // An atom not referenced by any FK: replacing its non-key terms with
        // fresh variables weakens the query, so its positions are
        // disobedient whenever occupied by a constant or shared variable.
        let s = Arc::new(parse_schema("T[2,1] N[2,1] O[1,1]").unwrap());
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        let q = parse_query(&s, "T(x,'c'), N(x,y), O(y)").unwrap();
        assert!(!is_obedient_position(&q, &fks, pos("T", 2)));
        // An orphan variable at that position is obedient.
        let q2 = parse_query(&s, "T(x,w), N(x,y), O(y)").unwrap();
        assert!(is_obedient_position(&q2, &fks, pos("T", 2)));
    }

    #[test]
    fn empty_set_is_obedient() {
        let s = Arc::new(parse_schema("O[1,1] N[2,1]").unwrap());
        let q = parse_query(&s, "N(x,y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        assert!(is_obedient_set(&q, &fks, &BTreeSet::new()));
        // O has no non-key positions → obedient.
        assert!(atom_obedient(&q, &fks, rel("O")));
    }
}
