//! The certain-answer engine: the historical entry point for evaluating
//! `CERTAINTY(q, FK)` on concrete databases when the problem is in FO.
//!
//! New code should route through [`crate::Solver`], which serves **every**
//! query class (FO, polynomial-time, hard-with-budget) behind one typed
//! surface; the engine's `answer*` methods survive as deprecated thin
//! wrappers over the same plan machinery. The engine remains the home of
//! the FO-only artifacts a rewriting consumer needs — the flattened
//! [`Formula`], the compiled formula evaluator and the SQL translation.

use crate::classify::{classify, Classification, NotFoReason};
use crate::compiled_plan::{CompileError, CompiledPlan};
use crate::flatten::{flatten, FlattenError};
use crate::parallel::ParallelPolicy;
use crate::pipeline::RewritePlan;
use crate::problem::Problem;
use cqa_fo::{CompiledFormula, Formula, Strategy};
use cqa_model::Instance;
use std::fmt;

/// An engine wrapping a constructed rewriting plan.
///
/// At construction the plan is also compiled into its view-backed
/// executable form ([`CompiledPlan`]): [`CertainEngine::answer`] and
/// [`CertainEngine::answer_many`] evaluate through lazy instance views with
/// zero intermediate database materializations, falling back to the
/// interpretive [`RewritePlan::answer`] only when compilation is not
/// possible (see [`CertainEngine::compile_plan`]).
///
/// ```
/// # #![allow(deprecated)] // the answer surface is deprecated in favor of Solver
/// use cqa_core::{CertainEngine, Problem};
/// use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
/// use std::sync::Arc;
///
/// let schema = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
/// let q = parse_query(&schema, "N('c',y), O(y), P(y)").unwrap();
/// let fks = parse_fks(&schema, "N[2] -> O").unwrap();
/// let engine = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap();
///
/// let db = parse_instance(&schema, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
/// assert!(engine.answer(&db)); // the paper's §8 yes-instance
/// ```
#[derive(Clone, Debug)]
pub struct CertainEngine {
    plan: RewritePlan,
    compiled: Option<CompiledPlan>,
}

impl CertainEngine {
    /// Classifies the problem; returns the engine when it is in FO, or the
    /// Theorem 12 hardness reason otherwise. The plan is compiled once here
    /// and reused by every subsequent `answer` call.
    pub fn try_new(problem: Problem) -> Result<CertainEngine, NotFoReason> {
        match classify(&problem) {
            Classification::Fo(plan) => {
                let compiled = CompiledPlan::compile(&plan).ok();
                Ok(CertainEngine {
                    plan: *plan,
                    compiled,
                })
            }
            Classification::NotFo(reason) => Err(reason),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &RewritePlan {
        &self.plan
    }

    /// The plan's compiled executable form, when compilation succeeded at
    /// construction time.
    pub fn compiled_plan(&self) -> Option<&CompiledPlan> {
        self.compiled.as_ref()
    }

    /// Compiles the plan afresh (exposing the failure reason that
    /// [`CertainEngine::try_new`] swallows when it falls back to the
    /// interpretive evaluator).
    pub fn compile_plan(&self) -> Result<CompiledPlan, CompileError> {
        CompiledPlan::compile(&self.plan)
    }

    /// The problem.
    pub fn problem(&self) -> &Problem {
        &self.plan.problem
    }

    /// Is `db` a yes-instance of `CERTAINTY(q, FK)`?
    ///
    /// Evaluates through the compiled plan when available (the common
    /// case), otherwise through the interpretive pipeline.
    #[deprecated(
        since = "0.1.0",
        note = "route through cqa_core::Solver::solve — it serves every query class \
                and reports provenance"
    )]
    pub fn answer(&self, db: &Instance) -> bool {
        match &self.compiled {
            Some(c) => c.answer(db),
            None => self.plan.answer(db),
        }
    }

    /// Interpretive evaluation through the materializing pipeline — the
    /// differential-testing oracle for [`CertainEngine::answer`].
    pub fn answer_materialized(&self, db: &Instance) -> bool {
        self.plan.answer(db)
    }

    /// Answers a batch of databases over the one compiled plan, amortizing
    /// the classification and compilation across the stream — the
    /// server-loop surface: classify + compile once, then evaluate per
    /// instance with only per-call slot arrays.
    ///
    /// Batches are sharded across threads under the default
    /// [`ParallelPolicy`] (environment-driven width via `CQA_THREADS`,
    /// resolved once per call; small batches run inline). Answers always
    /// come back **in input order**, regardless of shard completion order.
    #[deprecated(
        since = "0.1.0",
        note = "route through cqa_core::Solver::solve_many — a lazy, input-ordered, \
                provenance-carrying iterator over the same sharding machinery"
    )]
    pub fn answer_many(&self, dbs: &[Instance]) -> Vec<bool> {
        #[allow(deprecated)]
        self.answer_many_with(dbs, &ParallelPolicy::default().resolve())
    }

    /// [`CertainEngine::answer_many`] under an explicit policy. Sharding
    /// requires the compiled plan (per-shard evaluation is read-only over
    /// `&self`); the interpretive fallback stays sequential. Each instance
    /// is evaluated sequentially inside its shard — the parallelism is
    /// across the batch, and output order is input order by construction
    /// (contiguous shards, chunk-ordered join).
    #[deprecated(
        since = "0.1.0",
        note = "route through cqa_core::Solver::solve_many with ExecOptions — typed \
                options replace the raw policy parameter"
    )]
    pub fn answer_many_with(&self, dbs: &[Instance], policy: &ParallelPolicy) -> Vec<bool> {
        let policy = policy.resolve();
        if let Some(c) = &self.compiled {
            if policy.should_parallelize(dbs.len()) {
                return policy.pool().map(dbs, |db| c.answer(db));
            }
        }
        #[allow(deprecated)]
        dbs.iter().map(|db| self.answer(db)).collect()
    }

    /// Is `db` a yes-instance, with the compiled plan's internal loops
    /// (filter steps, Lemma 45 fan-out) sharded across threads per
    /// `policy`? Identical answers to [`CertainEngine::answer`]; falls back
    /// to the sequential interpretive evaluator when the plan did not
    /// compile.
    #[deprecated(
        since = "0.1.0",
        note = "route through cqa_core::Solver with ExecOptions::threads — the solver \
                shards plan internals under the same policy machinery"
    )]
    pub fn answer_parallel(&self, db: &Instance, policy: &ParallelPolicy) -> bool {
        match &self.compiled {
            Some(c) => c.answer_parallel(db, policy),
            None => self.plan.answer(db),
        }
    }

    /// The consistent first-order rewriting as one closed formula.
    pub fn formula(&self) -> Result<Formula, FlattenError> {
        flatten(&self.plan)
    }

    /// The flattened rewriting compiled for repeated evaluation (guarded
    /// strategy): compile once, then `compiled.eval_closed(db)` per
    /// database.
    pub fn compiled(&self) -> Result<CompiledFormula, FlattenError> {
        Ok(CompiledFormula::compile(
            &self.formula()?,
            Strategy::Guarded,
        ))
    }

    /// The rewriting rendered as SQL (active-domain translation).
    pub fn sql(&self) -> Result<(String, String), FlattenError> {
        let f = self.formula()?;
        Ok(cqa_fo::to_sql(self.problem().query().schema(), &f)
            .expect("flattened rewritings are closed"))
    }
}

impl fmt::Display for CertainEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.plan)
    }
}

#[cfg(test)]
#[allow(deprecated)] // intentionally exercises the deprecated answer surface
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn engine_round_trip() {
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        let engine = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap();

        let yes = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
        assert!(engine.answer(&yes));
        let no = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a)").unwrap();
        assert!(!engine.answer(&no));

        let f = engine.formula().unwrap();
        assert!(f.is_closed());
        let compiled = engine.compiled().unwrap();
        assert!(compiled.eval_closed(&yes));
        assert!(!compiled.eval_closed(&no));
        let (ddl, expr) = engine.sql().unwrap();
        assert!(ddl.contains("CREATE VIEW adom"));
        assert!(expr.contains("EXISTS"));
    }

    #[test]
    fn hard_problem_rejected_with_reason() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let err = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap_err();
        assert!(err.nl_hard());
        assert!(!err.l_hard());
    }
}
