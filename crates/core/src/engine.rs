//! The certain-answer engine: the user-facing entry point for evaluating
//! `CERTAINTY(q, FK)` on concrete databases when the problem is in FO.

use crate::classify::{classify, Classification, NotFoReason};
use crate::flatten::{flatten, FlattenError};
use crate::pipeline::RewritePlan;
use crate::problem::Problem;
use cqa_fo::{CompiledFormula, Formula, Strategy};
use cqa_model::Instance;
use std::fmt;

/// An engine wrapping a constructed rewriting plan.
///
/// ```
/// use cqa_core::{CertainEngine, Problem};
/// use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
/// use std::sync::Arc;
///
/// let schema = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
/// let q = parse_query(&schema, "N('c',y), O(y), P(y)").unwrap();
/// let fks = parse_fks(&schema, "N[2] -> O").unwrap();
/// let engine = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap();
///
/// let db = parse_instance(&schema, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
/// assert!(engine.answer(&db)); // the paper's §8 yes-instance
/// ```
#[derive(Clone, Debug)]
pub struct CertainEngine {
    plan: RewritePlan,
}

impl CertainEngine {
    /// Classifies the problem; returns the engine when it is in FO, or the
    /// Theorem 12 hardness reason otherwise.
    pub fn try_new(problem: Problem) -> Result<CertainEngine, NotFoReason> {
        match classify(&problem) {
            Classification::Fo(plan) => Ok(CertainEngine { plan: *plan }),
            Classification::NotFo(reason) => Err(reason),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &RewritePlan {
        &self.plan
    }

    /// The problem.
    pub fn problem(&self) -> &Problem {
        &self.plan.problem
    }

    /// Is `db` a yes-instance of `CERTAINTY(q, FK)`?
    pub fn answer(&self, db: &Instance) -> bool {
        self.plan.answer(db)
    }

    /// The consistent first-order rewriting as one closed formula.
    pub fn formula(&self) -> Result<Formula, FlattenError> {
        flatten(&self.plan)
    }

    /// The flattened rewriting compiled for repeated evaluation (guarded
    /// strategy): compile once, then `compiled.eval_closed(db)` per
    /// database.
    pub fn compiled(&self) -> Result<CompiledFormula, FlattenError> {
        Ok(CompiledFormula::compile(
            &self.formula()?,
            Strategy::Guarded,
        ))
    }

    /// The rewriting rendered as SQL (active-domain translation).
    pub fn sql(&self) -> Result<(String, String), FlattenError> {
        let f = self.formula()?;
        Ok(cqa_fo::to_sql(self.problem().query().schema(), &f))
    }
}

impl fmt::Display for CertainEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn engine_round_trip() {
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        let engine = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap();

        let yes = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
        assert!(engine.answer(&yes));
        let no = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a)").unwrap();
        assert!(!engine.answer(&no));

        let f = engine.formula().unwrap();
        assert!(f.is_closed());
        let compiled = engine.compiled().unwrap();
        assert!(compiled.eval_closed(&yes));
        assert!(!compiled.eval_closed(&no));
        let (ddl, expr) = engine.sql().unwrap();
        assert!(ddl.contains("CREATE VIEW adom"));
        assert!(expr.contains("EXISTS"));
    }

    #[test]
    fn hard_problem_rejected_with_reason() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let err = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap_err();
        assert!(err.nl_hard());
        assert!(!err.l_hard());
    }
}
