//! The work-splitting policy for shard-parallel plan execution.
//!
//! The compiled executor ([`crate::compiled_plan::CompiledPlan`]) has two
//! embarrassingly parallel loops — the per-block predicate evaluation of
//! the Lemma 37/40 filter steps and the per-block-fact residual fan-out of
//! Lemma 45 — and the engine ([`crate::CertainEngine`]) has a third, the
//! per-instance loop of `answer_many`. All three consult a
//! [`ParallelPolicy`]: *how many* worker threads may be used, and *how
//! much* work (blocks, block facts, instances) a loop must carry before
//! fanning out is worth the spawn cost. Below the threshold every loop
//! falls back to the sequential path, so a policy never changes answers —
//! only where they are computed. Determinism is preserved by construction:
//! shards are contiguous ranges reduced in input order
//! ([`rayon_lite::ThreadPool::map`]), and the Lemma 45 fan-out reduces by
//! conjunction.

use rayon_lite::ThreadPool;

/// When and how wide to fan work out across threads.
///
/// `max_threads = 0` (the default) resolves the width from the environment
/// — the `CQA_THREADS` variable when set, else the machine's available
/// parallelism — so one binary serves single-core CI legs and wide servers
/// without recompiling. A positive `max_threads` pins the width explicitly
/// (the differential tests sweep 1/2/8 this way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelPolicy {
    /// Minimum number of work units (blocks for the filter steps, block
    /// facts for Lemma 45, instances for `answer_many`) before a loop fans
    /// out; below it the sequential path runs.
    pub min_units: usize,
    /// Thread cap; `0` defers to [`rayon_lite::current_num_threads`]
    /// (`CQA_THREADS`, else available parallelism).
    pub max_threads: usize,
}

impl Default for ParallelPolicy {
    /// Environment-driven width, fan out at 16 work units.
    fn default() -> ParallelPolicy {
        ParallelPolicy {
            min_units: 16,
            max_threads: 0,
        }
    }
}

impl ParallelPolicy {
    /// The never-parallel policy: everything runs on the calling thread.
    pub const fn sequential() -> ParallelPolicy {
        ParallelPolicy {
            min_units: usize::MAX,
            max_threads: 1,
        }
    }

    /// A policy pinned to `threads` workers (`0` = environment-driven),
    /// with the default fan-out threshold.
    pub fn with_threads(threads: usize) -> ParallelPolicy {
        ParallelPolicy {
            max_threads: threads,
            ..ParallelPolicy::default()
        }
    }

    /// Replaces the fan-out threshold (builder style).
    pub fn fan_out_at(mut self, min_units: usize) -> ParallelPolicy {
        self.min_units = min_units;
        self
    }

    /// The resolved worker width: the explicit cap — **clamped to the
    /// available parallelism** ([`rayon_lite::current_num_threads`]:
    /// `CQA_THREADS` when set, else the machine's cores) — or the
    /// environment width itself when no cap is set. Clamping is what makes
    /// [`ParallelPolicy::should_parallelize`] short-circuit to the
    /// sequential path on a single-core machine: a `with_threads(4)` policy
    /// there resolves to width 1, and sharding at width 1 is pure spawn
    /// overhead (a measured 0.83× slowdown) for byte-identical answers.
    pub fn threads(&self) -> usize {
        let available = rayon_lite::current_num_threads();
        match self.max_threads {
            0 => available,
            n => n.min(available),
        }
    }

    /// Pins the environment-driven width: the returned policy has a
    /// non-zero `max_threads`, so every later [`ParallelPolicy::threads`] /
    /// [`ParallelPolicy::pool`] call is a field read instead of a
    /// `CQA_THREADS` parse. [`crate::ExecOptions::default`] does this once
    /// per options value; call sites that still take a raw policy resolve
    /// it once per batch.
    pub fn resolve(&self) -> ParallelPolicy {
        ParallelPolicy {
            min_units: self.min_units,
            max_threads: self.threads(),
        }
    }

    /// Whether `units` work items clear the fan-out floor (width aside) —
    /// the single definition of the threshold, shared by every loop that
    /// consults a policy. One unit can never profit from a second thread,
    /// whatever the threshold says.
    pub fn clears_floor(&self, units: usize) -> bool {
        units >= 2 && units >= self.min_units
    }

    /// Whether a loop over `units` work items should fan out under this
    /// policy: more than one thread and the floor cleared.
    pub fn should_parallelize(&self, units: usize) -> bool {
        self.threads() > 1 && self.clears_floor(units)
    }

    /// A pool of the resolved width.
    pub fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_never_parallelizes() {
        let p = ParallelPolicy::sequential();
        assert_eq!(p.threads(), 1);
        assert!(!p.should_parallelize(usize::MAX));
    }

    #[test]
    fn explicit_width_is_clamped_to_availability() {
        // Regression: an explicit cap used to be taken verbatim, so a
        // `with_threads(4)` policy sharded on a 1-core machine — pure spawn
        // overhead for identical answers (the 0.83× row in BENCH_eval.json).
        let available = rayon_lite::current_num_threads();
        let p = ParallelPolicy::with_threads(8);
        assert_eq!(p.threads(), 8.min(available));
        assert_eq!(p.pool().threads(), 8.min(available));
        // The cap can lower the width but never raise it past availability.
        assert!(ParallelPolicy::with_threads(usize::MAX).threads() <= available);
        if available == 1 {
            assert!(
                !p.fan_out_at(0).should_parallelize(usize::MAX / 2),
                "width 1 must short-circuit to the sequential path"
            );
        }
    }

    #[test]
    fn threshold_gates_fan_out() {
        // `min_units` gating is independent of the machine: express the
        // expectation through the resolved width.
        let p = ParallelPolicy::with_threads(4).fan_out_at(10);
        let wide = p.threads() > 1;
        assert!(!p.should_parallelize(9));
        assert_eq!(p.should_parallelize(10), wide);
        assert!(p.clears_floor(10));
        let eager = ParallelPolicy::with_threads(4).fan_out_at(0);
        assert!(!eager.should_parallelize(1), "one unit never fans out");
        assert_eq!(eager.should_parallelize(2), wide);
        assert!(eager.clears_floor(2));
    }

    #[test]
    fn default_resolves_from_environment() {
        let p = ParallelPolicy::default();
        assert!(p.threads() >= 1);
    }

    #[test]
    fn resolve_pins_the_width() {
        let p = ParallelPolicy::default().resolve();
        assert_ne!(p.max_threads, 0, "resolved policies never re-read the env");
        assert_eq!(p.threads(), p.max_threads);
        // Resolving is idempotent (the clamp is a min, so re-resolving a
        // pinned policy cannot change it).
        let pinned = ParallelPolicy::with_threads(5).resolve();
        assert_eq!(pinned.resolve(), pinned);
        assert_eq!(pinned.max_threads, 5.min(rayon_lite::current_num_threads()));
    }
}
