//! Theorem 12: the FO dichotomy for `CERTAINTY(q, FK)`.
//!
//! 1. acyclic attack graph and no block-interference ⟹ **FO**, with an
//!    effectively constructed consistent first-order rewriting;
//! 2. cyclic attack graph ⟹ **L-hard** (Lemma 14);
//! 3. block-interference ⟹ **NL-hard** (Lemma 15).
//!
//! Cases 2 and 3 can hold simultaneously; both witnesses are reported.

use crate::interference::{block_interference, InterferenceWitness};
use crate::pipeline::{BuildError, RewritePlan};
use crate::problem::Problem;
use cqa_attack::AttackGraph;
use std::fmt;

/// Why a problem is not in FO (Theorem 12, cases 2–3).
#[derive(Clone, Debug)]
pub struct NotFoReason {
    /// Case 2: the attack graph of `q` is cyclic (L-hard).
    pub cyclic_attack_graph: bool,
    /// Case 3: the block-interfering keys of `FK*` (NL-hard when non-empty).
    pub interference: Vec<InterferenceWitness>,
}

impl NotFoReason {
    /// Whether the L-hardness case applies.
    pub fn l_hard(&self) -> bool {
        self.cyclic_attack_graph
    }

    /// Whether the NL-hardness case applies.
    pub fn nl_hard(&self) -> bool {
        !self.interference.is_empty()
    }
}

impl fmt::Display for NotFoReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if self.cyclic_attack_graph {
            write!(f, "cyclic attack graph ⟹ L-hard")?;
            wrote = true;
        }
        if !self.interference.is_empty() {
            if wrote {
                write!(f, "; ")?;
            }
            write!(f, "block-interference ⟹ NL-hard (")?;
            for (i, w) in self.interference.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", w.fk)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The outcome of Theorem 12 on a problem.
#[derive(Clone, Debug)]
pub enum Classification {
    /// In FO; the rewriting plan is attached (boxed: a plan carries its
    /// precompiled tail formula and is much larger than the hardness
    /// witnesses).
    Fo(Box<RewritePlan>),
    /// Not in FO; hardness witnesses attached.
    NotFo(NotFoReason),
}

impl Classification {
    /// Whether the problem is in FO.
    pub fn is_fo(&self) -> bool {
        matches!(self, Classification::Fo(_))
    }

    /// The plan, if FO.
    pub fn plan(&self) -> Option<&RewritePlan> {
        match self {
            Classification::Fo(p) => Some(p),
            Classification::NotFo(_) => None,
        }
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Classification::Fo(_) => write!(f, "in FO (rewriting constructed)"),
            Classification::NotFo(r) => write!(f, "not in FO: {r}"),
        }
    }
}

/// Decides Theorem 12 for `problem`.
pub fn classify(problem: &Problem) -> Classification {
    let cyclic = !AttackGraph::of(problem.query()).is_acyclic();
    let interference = block_interference(problem.query(), problem.fks());
    if cyclic || !interference.is_empty() {
        return Classification::NotFo(NotFoReason {
            cyclic_attack_graph: cyclic,
            interference,
        });
    }
    match RewritePlan::build(problem) {
        Ok(plan) => Classification::Fo(Box::new(plan)),
        Err(BuildError::CyclicAttackGraph) => Classification::NotFo(NotFoReason {
            cyclic_attack_graph: true,
            interference: Vec::new(),
        }),
        Err(BuildError::BlockInterference(ws)) => Classification::NotFo(NotFoReason {
            cyclic_attack_graph: false,
            interference: ws,
        }),
        Err(BuildError::Internal(msg)) => {
            unreachable!("pipeline invariant violated on {problem}: {msg}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_query, parse_schema};
    use std::sync::Arc;

    fn classify_texts(schema: &str, query: &str, fks: &str) -> Classification {
        let s = Arc::new(parse_schema(schema).unwrap());
        let q = parse_query(&s, query).unwrap();
        let k = parse_fks(&s, fks).unwrap();
        classify(&Problem::new(q, k).unwrap())
    }

    #[test]
    fn example_13_dichotomy() {
        // q1: FO; q2: NL-hard; q3: FO (paper Example 13).
        assert!(classify_texts("N[3,1] O[2,1]", "N(x,u,y), O(y,w)", "N[3] -> O").is_fo());
        match classify_texts("N[3,1] O[2,1]", "N(x,'c',y), O(y,w)", "N[3] -> O") {
            Classification::NotFo(r) => {
                assert!(r.nl_hard());
                assert!(!r.l_hard());
            }
            Classification::Fo(_) => panic!("q2 must be NL-hard"),
        }
        assert!(classify_texts("N[3,1] O[2,1]", "N(x,'c',y), O(y,'c')", "N[3] -> O").is_fo());
    }

    #[test]
    fn section4_query_is_nl_hard() {
        match classify_texts("N[3,1] O[1,1]", "N(x,'c',y), O(y)", "N[3] -> O") {
            Classification::NotFo(r) => assert!(r.nl_hard()),
            Classification::Fo(_) => panic!("§4's query must be NL-hard"),
        }
    }

    #[test]
    fn proposition_16_query_is_nl_hard() {
        match classify_texts("N[2,1] O[1,1]", "N(x,x), O(x)", "N[2] -> O") {
            Classification::NotFo(r) => assert!(r.nl_hard()),
            Classification::Fo(_) => panic!("Prop 16's query must be NL-hard"),
        }
    }

    #[test]
    fn cyclic_attack_graph_reported_with_fks() {
        // §6's example: {R(x,y), S(y,x)} with any subset of
        // {R[2]→S, S[2]→R} is L-hard (Lemma 14).
        for fks in ["", "R[2] -> S", "R[2] -> S, S[2] -> R"] {
            let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
            let q = parse_query(&s, "R(x,y), S(y,x)").unwrap();
            let k = cqa_model::parser::parse_fks(&s, fks).unwrap();
            match classify(&Problem::new(q, k).unwrap()) {
                Classification::NotFo(r) => assert!(r.l_hard(), "FK = {fks}"),
                Classification::Fo(_) => panic!("must be L-hard with FK = {fks}"),
            }
        }
    }

    #[test]
    fn pk_only_fo_case() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
        let c = classify(&Problem::pk_only(q));
        assert!(c.is_fo());
        assert!(c.plan().is_some());
    }

    #[test]
    fn display() {
        let c = classify_texts("N[3,1] O[1,1]", "N(x,'c',y), O(y)", "N[3] -> O");
        assert!(c.to_string().contains("NL-hard"));
    }
}
