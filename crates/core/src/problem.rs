//! A validated `CERTAINTY(q, FK)` problem.

use cqa_model::{FkSet, ModelError, Query};
use std::fmt;

/// A pair `(q, FK)` where `q` is a self-join-free Boolean conjunctive query
/// and `FK` is a set of unary foreign keys *about* `q` (paper §3.2): every
/// key is satisfied by `q` read with distinct variables as distinct
/// constants, and every relation of `FK` occurs in `q`.
///
/// Construction validates both conditions; e.g. the paper's Proposition 19
/// pair `({E(x,y)}, {E[2]→E})` is rejected here because it is not about the
/// query (see §9 for why that case is genuinely open).
#[derive(Clone, PartialEq, Eq)]
pub struct Problem {
    query: Query,
    fks: FkSet,
}

impl Problem {
    /// Validates and builds a problem.
    pub fn new(query: Query, fks: FkSet) -> Result<Problem, ModelError> {
        fks.check_about(&query)?;
        Ok(Problem { query, fks })
    }

    /// A problem with no foreign keys (plain `CERTAINTY(q)`).
    pub fn pk_only(query: Query) -> Problem {
        let fks = FkSet::empty(query.schema().clone());
        Problem { query, fks }
    }

    /// The query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The foreign keys.
    pub fn fks(&self) -> &FkSet {
        &self.fks
    }

    /// Classifies this problem per Theorem 12 (convenience for
    /// [`crate::classify::classify`]).
    pub fn classify(&self) -> crate::classify::Classification {
        crate::classify::classify(self)
    }

    /// The primary-keys-only complexity of `CERTAINTY(q)` (Theorem 2's
    /// trichotomy), for comparison with the foreign-key classification.
    pub fn pk_class(&self) -> cqa_attack::PkClass {
        cqa_attack::classify_pk(&self.query)
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CERTAINTY({}, {})", self.query, self.fks)
    }
}

impl fmt::Debug for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn accepts_about_pair() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let p = Problem::new(q, fks).unwrap();
        assert_eq!(p.fks().len(), 1);
        assert!(p.to_string().starts_with("CERTAINTY("));
    }

    #[test]
    fn rejects_proposition_19_pair() {
        let s = Arc::new(parse_schema("E[2,1]").unwrap());
        let q = parse_query(&s, "E(x,y)").unwrap();
        let fks = parse_fks(&s, "E[2] -> E").unwrap();
        assert!(Problem::new(q, fks).is_err());
    }

    #[test]
    fn rejects_missing_reference_atom() {
        // §1: FK0 is not about {DOCS(x,t,'2016'), R(x,'o1')} because the
        // AUTHORS atom is missing.
        let s = Arc::new(parse_schema("DOCS[3,1] R[2,2] AUTHORS[3,1]").unwrap());
        let q = parse_query(&s, "DOCS(x, t, 2016), R(x, 'o1')").unwrap();
        let fks = parse_fks(&s, "R[1] -> DOCS, R[2] -> AUTHORS").unwrap();
        assert!(Problem::new(q, fks).is_err());

        // The full three-atom formulation q1 is accepted.
        let q1 = parse_query(&s, "DOCS(x, t, 2016), R(x, 'o1'), AUTHORS('o1', u, z)").unwrap();
        let fks1 = parse_fks(&s, "R[1] -> DOCS, R[2] -> AUTHORS").unwrap();
        assert!(Problem::new(q1, fks1).is_ok());
    }

    #[test]
    fn pk_only_constructor() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        let q = parse_query(&s, "R(x,y)").unwrap();
        let p = Problem::pk_only(q);
        assert!(p.fks().is_empty());
        assert_eq!(p.pk_class(), cqa_attack::PkClass::Fo);
    }
}
