//! The foreign-key taxonomy of the reduction pipeline (paper Fig. 4).
//!
//! A strong key `R[i] → S` is typed by the obedience of its endpoint atoms:
//! `o →str o`, `d →str d`, or `d →str o`. The type `o →str d` cannot occur
//! (§8: if the source is obedient and the key strong, the target is obedient
//! too); it is represented for diagnostics and asserted unreachable in the
//! pipeline. Weak keys have the single type `weak`; trivial keys are listed
//! separately because they are dropped up front.

use crate::obedience::atom_obedient;
use cqa_model::{FkSet, ForeignKey, Query};
use std::fmt;

/// The type of a foreign key relative to `(q, FK)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FkType {
    /// `R[1] → R` over signature `[n,1]`: never falsifiable.
    Trivial,
    /// `i ≤ k`: the key overlaps the primary key.
    Weak,
    /// Strong, both atoms obedient (removed by Lemma 37).
    ObedientObedient,
    /// Strong, both atoms disobedient (removed by Lemma 39).
    DisobedientDisobedient,
    /// Strong, source disobedient, target obedient (removed by Lemma 40/45;
    /// the only type that can be block-interfering).
    DisobedientObedient,
    /// Strong, source obedient, target disobedient — impossible per §8;
    /// reported for diagnostics only.
    ObedientDisobedient,
}

impl fmt::Display for FkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FkType::Trivial => "trivial",
            FkType::Weak => "weak",
            FkType::ObedientObedient => "o →str o",
            FkType::DisobedientDisobedient => "d →str d",
            FkType::DisobedientObedient => "d →str o",
            FkType::ObedientDisobedient => "o →str d (impossible)",
        };
        write!(f, "{s}")
    }
}

/// Types a foreign key relative to `(q, fks)`.
pub fn fk_type(q: &Query, fks: &FkSet, fk: &ForeignKey) -> FkType {
    let schema = fks.schema();
    if fk.is_trivial(schema) {
        return FkType::Trivial;
    }
    if fk.is_weak(schema) {
        return FkType::Weak;
    }
    let src = atom_obedient(q, fks, fk.from);
    let dst = atom_obedient(q, fks, fk.to);
    match (src, dst) {
        (true, true) => FkType::ObedientObedient,
        (false, false) => FkType::DisobedientDisobedient,
        (false, true) => FkType::DisobedientObedient,
        (true, false) => FkType::ObedientDisobedient,
    }
}

/// Types every key of the set (for reports and the E12 experiment).
pub fn type_table(q: &Query, fks: &FkSet) -> Vec<(ForeignKey, FkType)> {
    fks.iter().map(|fk| (*fk, fk_type(q, fks, fk))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_query, parse_schema};
    use std::sync::Arc;

    #[test]
    fn weak_and_trivial() {
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let q = parse_query(&s, "R(x,y), S(x)").unwrap();
        let fks = parse_fks(&s, "R[1] -> S").unwrap();
        let fk = ForeignKey::from_names("R", 1, "S");
        assert_eq!(fk_type(&q, &fks, &fk), FkType::Weak);

        let s2 = Arc::new(parse_schema("S[2,1]").unwrap());
        let q2 = parse_query(&s2, "S(x,y)").unwrap();
        let fks2 = parse_fks(&s2, "S[1] -> S").unwrap();
        assert_eq!(
            fk_type(&q2, &fks2, &ForeignKey::from_names("S", 1, "S")),
            FkType::Trivial
        );
    }

    #[test]
    fn example_13_types() {
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let fk = ForeignKey::from_names("N", 3, "O");

        // q1: o →str o (both obedient).
        let q1 = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
        assert_eq!(fk_type(&q1, &fks, &fk), FkType::ObedientObedient);

        // q2: d →str o.
        let q2 = parse_query(&s, "N(x,'c',y), O(y,w)").unwrap();
        assert_eq!(fk_type(&q2, &fks, &fk), FkType::DisobedientObedient);

        // q3: d →str d.
        let q3 = parse_query(&s, "N(x,'c',y), O(y,'c')").unwrap();
        assert_eq!(fk_type(&q3, &fks, &fk), FkType::DisobedientDisobedient);
    }

    #[test]
    fn type_table_lists_all() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1] S[1,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y), S(y)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O, N[3] -> S").unwrap();
        let table = type_table(&q, &fks);
        assert_eq!(table.len(), 2);
        assert!(table.iter().all(|(_, t)| *t == FkType::DisobedientObedient));
    }

    #[test]
    fn display() {
        assert_eq!(FkType::DisobedientObedient.to_string(), "d →str o");
        assert_eq!(FkType::Weak.to_string(), "weak");
    }
}
